//! Pull (event-based) XML parser.
//!
//! [`Reader`] yields a stream of [`Event`]s. The DOM layer in
//! [`crate::node`] is built on top of it, but the reader can also be used
//! directly for streaming consumption of large trace files.

use crate::error::{XmlError, XmlResult};

/// One parsing event produced by [`Reader::next_event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `<?xml version="1.0" ...?>` declaration (content between `<?xml` and `?>`).
    XmlDecl(String),
    /// Start tag: name plus attribute `(name, value)` pairs. `self_closing`
    /// is true for `<a/>`; no matching [`Event::EndElement`] follows then.
    StartElement {
        /// Element name as written (may include a namespace prefix).
        name: String,
        /// Attributes in document order, values entity-decoded.
        attributes: Vec<(String, String)>,
        /// Whether the tag was written `<name .../>`.
        self_closing: bool,
    },
    /// End tag `</name>`.
    EndElement {
        /// Element name as written.
        name: String,
    },
    /// Character data between tags, entity-decoded. Pure inter-element
    /// whitespace is still reported; consumers decide whether to keep it.
    Text(String),
    /// `<![CDATA[...]]>` section, verbatim content.
    CData(String),
    /// `<!-- ... -->` comment content.
    Comment(String),
    /// `<?target data?>` processing instruction (other than the XML decl).
    ProcessingInstruction(String),
    /// End of input reached.
    Eof,
}

/// A pull parser over an in-memory string.
///
/// The reader performs well-formedness checks that are local to the token
/// stream (tag syntax, entity syntax, attribute quoting, duplicate
/// attributes). Tag *balance* is checked by maintaining an open-element
/// stack, so `</b>` closing `<a>` is rejected at the reader level already.
pub struct Reader<'a> {
    input: &'a [u8],
    src: &'a str,
    pos: usize,
    line: usize,
    col: usize,
    stack: Vec<String>,
    seen_root: bool,
    done: bool,
}

impl<'a> Reader<'a> {
    /// Create a reader over `input`.
    pub fn new(input: &'a str) -> Self {
        Self {
            input: input.as_bytes(),
            src: input,
            pos: 0,
            line: 1,
            col: 1,
            stack: Vec::new(),
            seen_root: false,
            done: false,
        }
    }

    /// Current open-element depth (useful for streaming consumers).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    fn err(&self, msg: impl Into<String>) -> XmlError {
        XmlError::new(msg, self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.input.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        // Advance over the whole UTF-8 scalar so string slices at `pos`
        // always fall on character boundaries.
        let width = if b < 0x80 {
            1
        } else {
            self.src[self.pos..]
                .chars()
                .next()
                .map_or(1, char::len_utf8)
        };
        self.pos += width;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn consume_str(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            for _ in 0..s.len() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    /// Scan until the delimiter string; returns the content before it and
    /// consumes the delimiter. Errors if the delimiter never appears.
    fn take_until(&mut self, delim: &str, what: &str) -> XmlResult<String> {
        let start = self.pos;
        while self.pos < self.input.len() {
            if self.starts_with(delim) {
                let content = self.src[start..self.pos].to_string();
                self.consume_str(delim);
                return Ok(content);
            }
            self.bump();
        }
        Err(self.err(format!("unterminated {what} (expected `{delim}`)")))
    }

    fn read_name(&mut self) -> XmlResult<String> {
        let start = self.pos;
        match self.peek() {
            Some(c) if (c as char).is_alphabetic() || c == b'_' || c == b':' => {
                self.bump();
            }
            _ => return Err(self.err("expected a name")),
        }
        while let Some(c) = self.peek() {
            let ch = c as char;
            if ch.is_alphanumeric() || matches!(ch, '_' | ':' | '.' | '-') {
                self.bump();
            } else {
                break;
            }
        }
        Ok(self.src[start..self.pos].to_string())
    }

    fn decode_entities(&self, raw: &str, line: usize, col: usize) -> XmlResult<String> {
        if !raw.contains('&') {
            return Ok(raw.to_string());
        }
        let mut out = String::with_capacity(raw.len());
        let mut chars = raw.char_indices();
        while let Some((i, c)) = chars.next() {
            if c != '&' {
                out.push(c);
                continue;
            }
            let rest = &raw[i + 1..];
            let semi = rest.find(';').ok_or_else(|| {
                XmlError::new("unterminated entity reference (missing ';')", line, col)
            })?;
            let ent = &rest[..semi];
            match ent {
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "amp" => out.push('&'),
                "apos" => out.push('\''),
                "quot" => out.push('"'),
                _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                    let cp = u32::from_str_radix(&ent[2..], 16).map_err(|_| {
                        XmlError::new(format!("bad hex character reference `&{ent};`"), line, col)
                    })?;
                    out.push(char::from_u32(cp).ok_or_else(|| {
                        XmlError::new(format!("invalid code point in `&{ent};`"), line, col)
                    })?);
                }
                _ if ent.starts_with('#') => {
                    let cp = ent[1..].parse::<u32>().map_err(|_| {
                        XmlError::new(format!("bad character reference `&{ent};`"), line, col)
                    })?;
                    out.push(char::from_u32(cp).ok_or_else(|| {
                        XmlError::new(format!("invalid code point in `&{ent};`"), line, col)
                    })?);
                }
                _ => {
                    return Err(XmlError::new(
                        format!("unknown entity `&{ent};` (DTD entities are unsupported)"),
                        line,
                        col,
                    ))
                }
            }
            // Skip past the entity body and the ';'.
            for _ in 0..ent.len() + 1 {
                chars.next();
            }
        }
        Ok(out)
    }

    fn read_attr_value(&mut self) -> XmlResult<String> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.bump();
                q
            }
            _ => return Err(self.err("attribute value must be quoted")),
        };
        let (line, col) = (self.line, self.col);
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                let raw = self.src[start..self.pos].to_string();
                self.bump();
                if raw.contains('<') {
                    return Err(XmlError::new(
                        "`<` not allowed in attribute value",
                        line,
                        col,
                    ));
                }
                return self.decode_entities(&raw, line, col);
            }
            self.bump();
        }
        Err(XmlError::new("unterminated attribute value", line, col))
    }

    fn read_tag(&mut self) -> XmlResult<Event> {
        // self.pos is at '<'
        self.bump();
        match self.peek() {
            Some(b'/') => {
                self.bump();
                let name = self.read_name()?;
                self.skip_ws();
                if self.bump() != Some(b'>') {
                    return Err(self.err(format!("malformed end tag `</{name}`")));
                }
                match self.stack.pop() {
                    Some(open) if open == name => Ok(Event::EndElement { name }),
                    Some(open) => Err(self.err(format!(
                        "mismatched end tag: expected `</{open}>`, found `</{name}>`"
                    ))),
                    None => Err(self.err(format!("end tag `</{name}>` with no open element"))),
                }
            }
            Some(b'!') => {
                if self.consume_str("!--") {
                    let content = self.take_until("-->", "comment")?;
                    if content.contains("--") {
                        return Err(self.err("`--` not allowed inside a comment"));
                    }
                    Ok(Event::Comment(content))
                } else if self.consume_str("![CDATA[") {
                    let content = self.take_until("]]>", "CDATA section")?;
                    Ok(Event::CData(content))
                } else if self.starts_with("!DOCTYPE") {
                    Err(self.err("DOCTYPE declarations are not supported"))
                } else {
                    Err(self.err("unrecognized markup after `<!`"))
                }
            }
            Some(b'?') => {
                self.bump();
                let content = self.take_until("?>", "processing instruction")?;
                if content.starts_with("xml")
                    && content[3..]
                        .chars()
                        .next()
                        .is_none_or(|c| c.is_whitespace())
                {
                    Ok(Event::XmlDecl(content[3..].trim().to_string()))
                } else {
                    Ok(Event::ProcessingInstruction(content))
                }
            }
            _ => {
                let name = self.read_name()?;
                let mut attributes: Vec<(String, String)> = Vec::new();
                loop {
                    let before = self.pos;
                    self.skip_ws();
                    match self.peek() {
                        Some(b'>') => {
                            self.bump();
                            self.stack.push(name.clone());
                            self.seen_root = true;
                            return Ok(Event::StartElement {
                                name,
                                attributes,
                                self_closing: false,
                            });
                        }
                        Some(b'/') => {
                            self.bump();
                            if self.bump() != Some(b'>') {
                                return Err(self.err("expected `>` after `/`"));
                            }
                            self.seen_root = true;
                            return Ok(Event::StartElement {
                                name,
                                attributes,
                                self_closing: true,
                            });
                        }
                        Some(_) => {
                            if self.pos == before {
                                return Err(self.err("expected whitespace before attribute"));
                            }
                            let aname = self.read_name()?;
                            self.skip_ws();
                            if self.bump() != Some(b'=') {
                                return Err(
                                    self.err(format!("expected `=` after attribute `{aname}`"))
                                );
                            }
                            self.skip_ws();
                            let value = self.read_attr_value()?;
                            if attributes.iter().any(|(n, _)| n == &aname) {
                                return Err(self.err(format!("duplicate attribute `{aname}`")));
                            }
                            attributes.push((aname, value));
                        }
                        None => return Err(self.err(format!("unterminated start tag `<{name}`"))),
                    }
                }
            }
        }
    }

    /// Produce the next event. After [`Event::Eof`] every further call
    /// returns `Eof` again.
    pub fn next_event(&mut self) -> XmlResult<Event> {
        if self.done {
            return Ok(Event::Eof);
        }
        if self.pos >= self.input.len() {
            if !self.stack.is_empty() {
                return Err(self.err(format!(
                    "unexpected end of input: `<{}>` is still open",
                    self.stack.last().unwrap()
                )));
            }
            self.done = true;
            return Ok(Event::Eof);
        }
        if self.peek() == Some(b'<') {
            if self.peek_at(1).is_none() {
                return Err(self.err("lone `<` at end of input"));
            }
            return self.read_tag();
        }
        // Text run up to the next '<'.
        let (line, col) = (self.line, self.col);
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'<' {
                break;
            }
            self.bump();
        }
        let raw = &self.src[start..self.pos];
        if raw.contains("]]>") {
            return Err(XmlError::new(
                "`]]>` not allowed in character data",
                line,
                col,
            ));
        }
        let text = self.decode_entities(raw, line, col)?;
        if self.stack.is_empty() && !text.trim().is_empty() {
            return Err(XmlError::new(
                "character data outside the root element",
                line,
                col,
            ));
        }
        Ok(Event::Text(text))
    }

    /// Drain all remaining events into a vector (testing/debug helper).
    pub fn collect_events(mut self) -> XmlResult<Vec<Event>> {
        let mut out = Vec::new();
        loop {
            let ev = self.next_event()?;
            let eof = ev == Event::Eof;
            out.push(ev);
            if eof {
                return Ok(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(s: &str) -> Vec<Event> {
        Reader::new(s).collect_events().unwrap()
    }

    fn parse_err(s: &str) -> XmlError {
        Reader::new(s).collect_events().unwrap_err()
    }

    #[test]
    fn simple_element() {
        let ev = events("<a></a>");
        assert_eq!(
            ev,
            vec![
                Event::StartElement {
                    name: "a".into(),
                    attributes: vec![],
                    self_closing: false
                },
                Event::EndElement { name: "a".into() },
                Event::Eof
            ]
        );
    }

    #[test]
    fn self_closing_with_attrs() {
        let ev = events(r#"<a x="1" y='two'/>"#);
        assert_eq!(
            ev[0],
            Event::StartElement {
                name: "a".into(),
                attributes: vec![("x".into(), "1".into()), ("y".into(), "two".into())],
                self_closing: true
            }
        );
    }

    #[test]
    fn text_and_entities() {
        let ev = events("<a>x &lt;&amp;&gt; y&#65;&#x42;</a>");
        assert_eq!(ev[1], Event::Text("x <&> yAB".into()));
    }

    #[test]
    fn cdata_passthrough() {
        let ev = events("<a><![CDATA[<raw>&stuff]]></a>");
        assert_eq!(ev[1], Event::CData("<raw>&stuff".into()));
    }

    #[test]
    fn comments_and_pi() {
        let ev = events("<?xml version=\"1.0\"?><!-- note --><a><?pi data?></a>");
        assert_eq!(ev[0], Event::XmlDecl("version=\"1.0\"".into()));
        assert_eq!(ev[1], Event::Comment(" note ".into()));
        assert_eq!(ev[3], Event::ProcessingInstruction("pi data".into()));
    }

    #[test]
    fn mismatched_tags_rejected() {
        let e = parse_err("<a><b></a></b>");
        assert!(e.message.contains("mismatched end tag"), "{e}");
    }

    #[test]
    fn unclosed_rejected() {
        let e = parse_err("<a><b></b>");
        assert!(e.message.contains("still open"), "{e}");
    }

    #[test]
    fn duplicate_attr_rejected() {
        let e = parse_err(r#"<a x="1" x="2"/>"#);
        assert!(e.message.contains("duplicate attribute"), "{e}");
    }

    #[test]
    fn unknown_entity_rejected() {
        let e = parse_err("<a>&nbsp;</a>");
        assert!(e.message.contains("unknown entity"), "{e}");
    }

    #[test]
    fn doctype_rejected() {
        let e = parse_err("<!DOCTYPE html><a/>");
        assert!(e.message.contains("DOCTYPE"), "{e}");
    }

    #[test]
    fn attr_value_entities() {
        let ev = events(r#"<a v="&quot;x&quot; &amp; y"/>"#);
        assert_eq!(
            ev[0],
            Event::StartElement {
                name: "a".into(),
                attributes: vec![("v".into(), "\"x\" & y".into())],
                self_closing: true
            }
        );
    }

    #[test]
    fn error_position_is_tracked() {
        let e = parse_err("<a>\n  <b x=>\n</a>");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("quoted"), "{e}");
    }

    #[test]
    fn nested_depth() {
        let mut r = Reader::new("<a><b><c/></b></a>");
        r.next_event().unwrap();
        assert_eq!(r.depth(), 1);
        r.next_event().unwrap();
        assert_eq!(r.depth(), 2);
    }

    #[test]
    fn unterminated_comment() {
        let e = parse_err("<a><!-- oops</a>");
        assert!(e.message.contains("unterminated comment"), "{e}");
    }

    #[test]
    fn double_dash_in_comment_rejected() {
        let e = parse_err("<a><!-- x -- y --></a>");
        assert!(e.message.contains("--"), "{e}");
    }

    #[test]
    fn text_outside_root_rejected() {
        let e = parse_err("stray<a/>");
        assert!(e.message.contains("outside the root"), "{e}");
    }

    #[test]
    fn whitespace_outside_root_ok() {
        let ev = events("  <a/>  ");
        assert!(matches!(ev[0], Event::Text(_)));
        assert!(matches!(ev[1], Event::StartElement { .. }));
    }
}
