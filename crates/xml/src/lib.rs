//! # prophet-xml
//!
//! A small, dependency-free XML 1.0 subset used by the Performance Prophet
//! reproduction for every on-disk artifact of the original system: model
//! files (`Models (XML)`), the model-checking file (`MCF`), tool
//! configuration files (`CF`), and trace files when exported as XML.
//!
//! The original Performance Prophet (Pllana et al., ICPP-W 2008) relied on
//! Java XML tooling; Rust's XMI/UML ecosystem is thin, so this crate is a
//! purpose-built substrate providing exactly what the pipeline needs:
//!
//! * [`reader`] — a pull (event) parser with line/column error reporting,
//! * [`node`] — a DOM-style tree ([`Document`], [`Element`]),
//! * [`writer`] — a pretty-printing serializer with correct escaping.
//!
//! Supported subset: elements, attributes, character data, CDATA sections,
//! comments, processing instructions, XML declarations, and the five
//! predefined entities (`&lt; &gt; &amp; &apos; &quot;`) plus numeric
//! character references. DTDs and external entities are intentionally
//! rejected (the Prophet file formats never use them, and rejecting them
//! avoids entity-expansion pathologies).
//!
//! ## Quickstart
//!
//! ```
//! use prophet_xml::parse_document;
//!
//! let doc = parse_document("<model name='demo'><action id='1'/></model>").unwrap();
//! assert_eq!(doc.root.name, "model");
//! assert_eq!(doc.root.attr("name"), Some("demo"));
//! let out = doc.to_xml_string();
//! assert!(out.contains("<action id=\"1\"/>"));
//! ```

pub mod error;
pub mod node;
pub mod reader;
pub mod writer;

pub use error::{XmlError, XmlResult};
pub use node::{Document, Element, Node};
pub use reader::{Event, Reader};
pub use writer::{WriteOptions, Writer};

/// Parse a complete XML document into a DOM tree.
///
/// This is the main convenience entry point; it drives [`Reader`] to
/// completion and materializes the tree.
pub fn parse_document(input: &str) -> XmlResult<Document> {
    node::Document::parse(input)
}

/// Escape a string for use as XML character data (`<`, `>`, `&`).
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape a string for use inside a double-quoted XML attribute value.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            '\r' => out.push_str("&#13;"),
            _ => out.push(c),
        }
    }
    out
}

/// Returns true if `name` is a valid XML name for this subset:
/// first char is a letter, `_`, or `:`; rest are letters, digits,
/// `_ : . -`.
pub fn is_valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_alphanumeric() || matches!(c, '_' | ':' | '.' | '-'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_text_basic() {
        assert_eq!(escape_text("a<b>&c"), "a&lt;b&gt;&amp;c");
        assert_eq!(escape_text("plain"), "plain");
    }

    #[test]
    fn escape_attr_quotes_and_whitespace() {
        assert_eq!(escape_attr("say \"hi\""), "say &quot;hi&quot;");
        assert_eq!(escape_attr("a\nb"), "a&#10;b");
        assert_eq!(escape_attr("a\tb"), "a&#9;b");
    }

    #[test]
    fn valid_names() {
        assert!(is_valid_name("model"));
        assert!(is_valid_name("_x"));
        assert!(is_valid_name("xmi:id"));
        assert!(is_valid_name("a-b.c"));
        assert!(!is_valid_name(""));
        assert!(!is_valid_name("1abc"));
        assert!(!is_valid_name("-x"));
        assert!(!is_valid_name("a b"));
    }

    #[test]
    fn quickstart_roundtrip() {
        let doc = parse_document("<m a='1'><c/>text</m>").unwrap();
        let s = doc.to_xml_string();
        let doc2 = parse_document(&s).unwrap();
        assert_eq!(doc.root, doc2.root);
    }
}
