//! Analytic validation of the DES engine against M/M/1 and M/M/c queueing
//! theory (experiment E3 in DESIGN.md). If the facility/queue machinery is
//! correct, simulated utilizations and queue lengths must converge to the
//! closed-form values.

use prophet_sim::{
    Action, Config, Discipline, FacilityId, Msg, ProcCtx, Process, Resumed, Simulator,
};

/// Open M/M/c system: a generator spawns customers with exponential
/// interarrival times; each customer uses one of `c` servers for an
/// exponential service time.
struct Generator {
    cpu: FacilityId,
    mean_interarrival: f64,
    mean_service: f64,
    remaining: u32,
    started: bool,
}

struct Customer {
    cpu: FacilityId,
    service: f64,
}

impl Process for Customer {
    fn resume(&mut self, _ctx: &mut ProcCtx<'_>, why: Resumed) -> Action {
        match why {
            Resumed::Start => Action::Use(self.cpu, self.service),
            _ => Action::Terminate,
        }
    }
}

impl Process for Generator {
    fn resume(&mut self, ctx: &mut ProcCtx<'_>, _why: Resumed) -> Action {
        if self.started && self.remaining > 0 {
            self.remaining -= 1;
            let mut svc = ctx.random_stream("service");
            // Advance the service stream to a unique position per customer:
            // streams are derived per name, so embed the customer index.
            let service = {
                let mut s = ctx.random_stream(&format!("svc-{}", self.remaining));
                let _ = &mut svc;
                s.exponential(self.mean_service)
            };
            ctx.spawn(
                &format!("cust-{}", self.remaining),
                Box::new(Customer {
                    cpu: self.cpu,
                    service,
                }),
            );
        }
        self.started = true;
        if self.remaining == 0 {
            return Action::Terminate;
        }
        let mut arr = ctx.random_stream(&format!("arr-{}", self.remaining));
        Action::Hold(arr.exponential(self.mean_interarrival))
    }
}

fn run_mmc(
    servers: usize,
    lambda: f64,
    mu: f64,
    customers: u32,
    seed: u64,
) -> prophet_sim::SimReport {
    let mut sim = Simulator::new(Config {
        seed,
        ..Default::default()
    });
    let cpu = sim.add_facility("server", servers, Discipline::Fcfs);
    sim.spawn(
        "generator",
        Box::new(Generator {
            cpu,
            mean_interarrival: 1.0 / lambda,
            mean_service: 1.0 / mu,
            remaining: customers,
            started: false,
        }),
    );
    sim.run().expect("queueing model must not deadlock")
}

#[test]
fn mm1_utilization_matches_rho() {
    // λ=0.5, μ=1.0 → ρ=0.5.
    let report = run_mmc(1, 0.5, 1.0, 20_000, 42);
    let f = &report.facilities[0];
    assert!(
        (f.utilization - 0.5).abs() < 0.03,
        "utilization {} should be ≈ 0.5",
        f.utilization
    );
}

#[test]
fn mm1_queue_length_matches_theory() {
    // Mean number *waiting* in queue: Lq = ρ²/(1−ρ). For ρ=0.5, Lq = 0.5.
    let report = run_mmc(1, 0.5, 1.0, 40_000, 7);
    let f = &report.facilities[0];
    assert!(
        (f.mean_queue_len - 0.5).abs() < 0.08,
        "Lq {} should be ≈ 0.5",
        f.mean_queue_len
    );
}

#[test]
fn mm1_wait_time_matches_littles_law() {
    // Wq = Lq/λ = 1.0 for λ=0.5, ρ=0.5.
    let report = run_mmc(1, 0.5, 1.0, 40_000, 11);
    let f = &report.facilities[0];
    assert!(
        (f.mean_wait - 1.0).abs() < 0.15,
        "Wq {} should be ≈ 1.0",
        f.mean_wait
    );
}

#[test]
fn mm1_response_time_matches_theory() {
    // Mean response (sojourn) time: W = Wq + E[S] = 1/(μ−λ) = 2.0 for
    // λ=0.5, μ=1.0. The facility reports Wq; add the mean service time.
    let lambda = 0.5;
    let mu = 1.0;
    let report = run_mmc(1, lambda, mu, 40_000, 13);
    let f = &report.facilities[0];
    let w = f.mean_wait + 1.0 / mu;
    let theory = 1.0 / (mu - lambda);
    assert!(
        (w - theory).abs() < 0.2,
        "W {w} should be ≈ {theory} (Wq {} + 1/μ)",
        f.mean_wait
    );
}

#[test]
fn mm1_number_in_system_matches_littles_law() {
    // L = Lq + ρ = ρ/(1−ρ) = 1.0 at ρ=0.5: the mean number in system is
    // the mean queue plus the mean number in service (= utilization for
    // a single server).
    let report = run_mmc(1, 0.5, 1.0, 40_000, 17);
    let f = &report.facilities[0];
    let l = f.mean_queue_len + f.mean_busy;
    assert!((l - 1.0).abs() < 0.12, "L {l} should be ≈ 1.0");
    // mean_busy itself is the time-weighted ρ.
    assert!((f.mean_busy - 0.5).abs() < 0.04, "ρ {}", f.mean_busy);
}

/// Erlang-C probability of waiting for an M/M/c queue with offered load
/// `a = λ/μ` — the closed-form oracle for the multi-server facility.
fn erlang_c(servers: usize, a: f64) -> f64 {
    let c = servers as f64;
    let rho = a / c;
    let mut term = 1.0; // a^k / k!
    let mut sum = 1.0; // Σ_{k=0}^{c-1} a^k/k!
    for k in 1..servers {
        term *= a / k as f64;
        sum += term;
    }
    let tail = term * (a / c) / (1.0 - rho); // a^c/(c!·(1−ρ))
    tail / (sum + tail)
}

#[test]
fn mm2_wait_matches_erlang_c() {
    // λ=1.5, μ=1.0 on 2 servers: a=1.5, ρ=0.75,
    // Wq = C(2, 1.5)/(cμ−λ) = (9/14)/0.5 ≈ 1.2857.
    let (lambda, mu, servers) = (1.5, 1.0, 2usize);
    let report = run_mmc(servers, lambda, mu, 40_000, 23);
    let f = &report.facilities[0];
    let theory = erlang_c(servers, lambda / mu) / (servers as f64 * mu - lambda);
    assert!(
        (f.mean_wait - theory).abs() < 0.25,
        "M/M/2 Wq {} should be ≈ {theory}",
        f.mean_wait
    );
    // Per-server utilization converges to ρ = 0.75.
    assert!(
        (f.utilization - 0.75).abs() < 0.04,
        "utilization {}",
        f.utilization
    );
}

#[test]
fn mm2_less_waiting_than_mm1_at_same_load() {
    // Same per-server load (ρ = 0.75): pooled servers wait less.
    let one = run_mmc(1, 0.75, 1.0, 20_000, 5);
    let two = run_mmc(2, 1.5, 1.0, 20_000, 5);
    assert!(
        two.facilities[0].mean_wait < one.facilities[0].mean_wait,
        "M/M/2 wait {} should beat M/M/1 wait {}",
        two.facilities[0].mean_wait,
        one.facilities[0].mean_wait
    );
}

#[test]
fn heavier_load_longer_queues() {
    let light = run_mmc(1, 0.3, 1.0, 20_000, 3);
    let heavy = run_mmc(1, 0.8, 1.0, 20_000, 3);
    assert!(
        heavy.facilities[0].mean_queue_len > light.facilities[0].mean_queue_len * 3.0,
        "Lq(0.8)={} vs Lq(0.3)={}",
        heavy.facilities[0].mean_queue_len,
        light.facilities[0].mean_queue_len
    );
}

#[test]
fn same_seed_same_trajectory() {
    let a = run_mmc(1, 0.5, 1.0, 2_000, 99);
    let b = run_mmc(1, 0.5, 1.0, 2_000, 99);
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.facilities[0].completions, b.facilities[0].completions);
}

#[test]
fn different_seed_different_trajectory() {
    let a = run_mmc(1, 0.5, 1.0, 2_000, 1);
    let b = run_mmc(1, 0.5, 1.0, 2_000, 2);
    assert_ne!(a.end_time, b.end_time);
}

// Silence an unused-field lint on Msg import (used by other tests in the
// harness); keep the type exercised here too.
#[test]
fn msg_is_plain_data() {
    let m = Msg {
        from: prophet_sim::ProcessId(0),
        tag: 1,
        payload: 2.0,
        size_bytes: 3,
        sent_at: 4.0,
    };
    let m2 = m;
    assert_eq!(m, m2);
}
