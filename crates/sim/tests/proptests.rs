//! Property-based tests of simulation-kernel invariants under randomized
//! workloads.

use prophet_sim::{
    Action, CalendarKind, Config, Discipline, FacilityId, ProcCtx, Process, Resumed, Simulator,
};
use proptest::prelude::*;

/// A process running a fixed schedule of service times on one facility.
struct Scheduled {
    cpu: FacilityId,
    times: Vec<f64>,
    next: usize,
}

impl Process for Scheduled {
    fn resume(&mut self, _ctx: &mut ProcCtx<'_>, why: Resumed) -> Action {
        match why {
            Resumed::Start | Resumed::UseDone(_) => {
                if self.next >= self.times.len() {
                    return Action::Terminate;
                }
                let t = self.times[self.next];
                self.next += 1;
                Action::Use(self.cpu, t)
            }
            _ => Action::Terminate,
        }
    }
}

fn run(kind: CalendarKind, servers: usize, schedules: &[Vec<f64>]) -> (f64, u64, f64, u64) {
    let mut sim = Simulator::new(Config {
        calendar: kind,
        ..Default::default()
    });
    let cpu = sim.add_facility("cpu", servers, Discipline::Fcfs);
    for (i, times) in schedules.iter().enumerate() {
        sim.spawn(
            &format!("p{i}"),
            Box::new(Scheduled {
                cpu,
                times: times.clone(),
                next: 0,
            }),
        );
    }
    let report = sim.run().expect("no deadlock possible");
    let f = &report.facilities[0];
    (
        report.end_time,
        report.events_processed,
        f.busy_integral,
        f.completions,
    )
}

fn schedules_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        prop::collection::vec((1u32..1000).prop_map(|n| n as f64 / 1000.0), 1..12),
        1..10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn conservation_of_work(schedules in schedules_strategy(), servers in 1usize..4) {
        // Total busy server-time must equal the sum of all service times,
        // regardless of interleaving or queueing.
        let total: f64 = schedules.iter().flatten().sum();
        let jobs: u64 = schedules.iter().map(|s| s.len() as u64).sum();
        let (end, _events, busy, completions) = run(CalendarKind::BinaryHeap, servers, &schedules);
        prop_assert!((busy - total).abs() < 1e-9, "busy {busy} != work {total}");
        prop_assert_eq!(completions, jobs);
        // Makespan bounds: ≥ work/servers (perfect packing), ≥ the longest
        // single schedule, ≤ total work (full serialization).
        let longest: f64 = schedules
            .iter()
            .map(|s| s.iter().sum::<f64>())
            .fold(0.0, f64::max);
        prop_assert!(end >= total / servers as f64 - 1e-9);
        prop_assert!(end >= longest - 1e-9);
        prop_assert!(end <= total + 1e-9);
    }

    #[test]
    fn calendars_agree_exactly(schedules in schedules_strategy(), servers in 1usize..4) {
        let a = run(CalendarKind::BinaryHeap, servers, &schedules);
        let b = run(CalendarKind::SortedVec, servers, &schedules);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn more_servers_never_slower(schedules in schedules_strategy()) {
        let (t1, ..) = run(CalendarKind::BinaryHeap, 1, &schedules);
        let (t2, ..) = run(CalendarKind::BinaryHeap, 2, &schedules);
        let (t4, ..) = run(CalendarKind::BinaryHeap, 4, &schedules);
        prop_assert!(t2 <= t1 + 1e-9, "2 servers slower: {t2} > {t1}");
        prop_assert!(t4 <= t2 + 1e-9, "4 servers slower: {t4} > {t2}");
    }

    #[test]
    fn utilization_in_unit_range(schedules in schedules_strategy(), servers in 1usize..4) {
        let mut sim = Simulator::new(Config::default());
        let cpu = sim.add_facility("cpu", servers, Discipline::Fcfs);
        for (i, times) in schedules.iter().enumerate() {
            sim.spawn(&format!("p{i}"), Box::new(Scheduled { cpu, times: times.clone(), next: 0 }));
        }
        let report = sim.run().unwrap();
        let u = report.facilities[0].utilization;
        prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {u}");
    }
}
