//! Storages: counting resources (CSIM `storage`), e.g. memory pools or
//! bandwidth tokens.

use crate::kernel::ProcessId;
use crate::stats::TimeWeighted;
use std::collections::VecDeque;

/// A counting resource with FIFO blocking acquisition.
///
/// FIFO granting means a large request at the head blocks smaller ones
/// behind it — that is deliberate (no starvation of large requests), and
/// matches CSIM's storage semantics.
#[derive(Debug)]
pub struct Storage {
    name: String,
    capacity: u64,
    available: u64,
    waiters: VecDeque<(ProcessId, u64)>,
    in_use: TimeWeighted,
}

impl Storage {
    /// Create a storage with `capacity` units, all available.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(name: impl Into<String>, capacity: u64) -> Self {
        assert!(capacity > 0, "storage capacity must be positive");
        Self {
            name: name.into(),
            capacity,
            available: capacity,
            waiters: VecDeque::new(),
            in_use: TimeWeighted::new(0.0, 0.0),
        }
    }

    /// Storage name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Currently available units.
    pub fn available(&self) -> u64 {
        self.available
    }

    /// Attempt to acquire `amount` units for `pid` at `now`.
    ///
    /// Returns `true` if granted immediately; otherwise queues the request.
    ///
    /// # Errors
    /// Errors if `amount` exceeds total capacity (would deadlock forever).
    pub fn acquire(&mut self, pid: ProcessId, amount: u64, now: f64) -> Result<bool, String> {
        if amount > self.capacity {
            return Err(format!(
                "request of {amount} exceeds capacity {} of storage `{}`",
                self.capacity, self.name
            ));
        }
        if self.waiters.is_empty() && amount <= self.available {
            self.available -= amount;
            self.in_use.add(amount as f64, now);
            Ok(true)
        } else {
            self.waiters.push_back((pid, amount));
            Ok(false)
        }
    }

    /// Return `amount` units at `now`. Returns the processes whose queued
    /// requests are now granted (in FIFO order).
    ///
    /// # Errors
    /// Errors if the release would exceed capacity (double release).
    pub fn release(&mut self, amount: u64, now: f64) -> Result<Vec<ProcessId>, String> {
        if self.available + amount > self.capacity {
            return Err(format!(
                "release of {amount} exceeds capacity of storage `{}` ({} already available)",
                self.name, self.available
            ));
        }
        self.available += amount;
        self.in_use.add(-(amount as f64), now);
        let mut granted = Vec::new();
        while let Some(&(pid, want)) = self.waiters.front() {
            if want <= self.available {
                self.available -= want;
                self.in_use.add(want as f64, now);
                self.waiters.pop_front();
                granted.push(pid);
            } else {
                break; // strict FIFO: head blocks the rest
            }
        }
        Ok(granted)
    }

    /// Number of queued requests.
    pub fn waiting(&self) -> usize {
        self.waiters.len()
    }

    /// Waiting processes (diagnostics / deadlock reports).
    pub fn waiters(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.waiters.iter().map(|(p, _)| *p)
    }

    /// Time-weighted mean units in use over `[0, now]`.
    pub fn mean_in_use(&self, now: f64) -> f64 {
        self.in_use.mean(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: usize) -> ProcessId {
        ProcessId(n)
    }

    #[test]
    fn acquire_release() {
        let mut s = Storage::new("mem", 10);
        assert!(s.acquire(pid(1), 6, 0.0).unwrap());
        assert_eq!(s.available(), 4);
        assert!(!s.acquire(pid(2), 6, 0.0).unwrap());
        let granted = s.release(6, 1.0).unwrap();
        assert_eq!(granted, vec![pid(2)]);
        assert_eq!(s.available(), 4);
    }

    #[test]
    fn oversized_request_rejected() {
        let mut s = Storage::new("mem", 10);
        assert!(s.acquire(pid(1), 11, 0.0).is_err());
    }

    #[test]
    fn double_release_rejected() {
        let mut s = Storage::new("mem", 10);
        assert!(s.release(1, 0.0).is_err());
    }

    #[test]
    fn fifo_head_blocks() {
        let mut s = Storage::new("mem", 10);
        assert!(s.acquire(pid(1), 10, 0.0).unwrap());
        assert!(!s.acquire(pid(2), 8, 0.0).unwrap());
        assert!(!s.acquire(pid(3), 1, 0.0).unwrap());
        // Releasing 5 is not enough for pid2 (head) — pid3 must NOT jump.
        assert!(s.release(5, 1.0).unwrap().is_empty());
        assert_eq!(s.waiting(), 2);
        // Releasing 5 more grants pid2 (8) and then pid3 (1).
        let granted = s.release(5, 2.0).unwrap();
        assert_eq!(granted, vec![pid(2), pid(3)]);
    }

    #[test]
    fn mean_in_use() {
        let mut s = Storage::new("mem", 4);
        assert!(s.acquire(pid(1), 4, 0.0).unwrap());
        s.release(4, 2.0).unwrap();
        // 4 units for 2s of a 4s window = 2.0 mean.
        assert!((s.mean_in_use(4.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn immediate_grant_requires_empty_queue() {
        let mut s = Storage::new("mem", 10);
        assert!(s.acquire(pid(1), 9, 0.0).unwrap());
        assert!(!s.acquire(pid(2), 5, 0.0).unwrap());
        // 1 unit is available and pid3 wants 1, but pid2 is queued: FIFO.
        assert!(!s.acquire(pid(3), 1, 0.0).unwrap());
        assert_eq!(s.waiting(), 2);
    }
}
