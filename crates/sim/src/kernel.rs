//! The simulation kernel: processes, the event loop, and synchronization.
//!
//! See the crate docs for the execution model. In brief: a [`Process`] is a
//! resumable state machine; [`Simulator::run`] pops calendar entries,
//! resumes the target process with the wake-up reason ([`Resumed`]), and
//! translates the returned blocking [`Action`] into calendar entries or
//! waits on facilities/mailboxes/events/storages.

use crate::calendar::{BinaryHeapCalendar, Calendar, CalendarKind, SortedVecCalendar};
use crate::facility::{Discipline, Facility, FacilityStats};
use crate::mailbox::{Mailbox, Msg};
use crate::random::RandomStream;
use crate::storage::Storage;
use crate::time::SimTime;
use std::collections::HashMap;
use std::fmt;

/// Identifies a process within one [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub usize);

/// Identifies a facility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FacilityId(pub usize);

/// Identifies a mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MailboxId(pub usize);

/// Identifies a synchronization event (binary flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(pub usize);

/// Identifies a storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StorageId(pub usize);

/// Why a process was resumed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Resumed {
    /// First activation.
    Start,
    /// A previous [`Action::Hold`] elapsed.
    HoldDone,
    /// A previous [`Action::Reserve`] was granted.
    Granted(FacilityId),
    /// A previous [`Action::Use`] completed (reserve + hold + release).
    UseDone(FacilityId),
    /// A previous [`Action::Receive`] completed with this message.
    MsgReceived(Msg),
    /// A previous [`Action::WaitEvent`] was satisfied.
    EventSet(EventId),
    /// A previous [`Action::Acquire`] was granted.
    StorageGranted(StorageId),
}

/// The blocking request a process returns from [`Process::resume`].
#[derive(Debug)]
pub enum Action {
    /// Advance simulated time by `dt` seconds (≥ 0).
    Hold(f64),
    /// Reserve a server of the facility (possibly queuing). The process is
    /// resumed with [`Resumed::Granted`] when it holds a server; it must
    /// later release via [`ProcCtx::release`].
    Reserve(FacilityId),
    /// Convenience: reserve a server, hold it for `dt`, release. Resumed
    /// with [`Resumed::UseDone`]. This is CSIM's `use(f, t)`.
    Use(FacilityId, f64),
    /// Block until a message is available in the mailbox.
    Receive(MailboxId),
    /// Block until the event is set (no-op if already set).
    WaitEvent(EventId),
    /// Block until `amount` units of the storage are granted.
    Acquire(StorageId, u64),
    /// Terminate this process.
    Terminate,
}

/// A simulated process: a resumable state machine.
pub trait Process {
    /// Called by the kernel each time the process becomes runnable.
    /// Perform non-blocking effects through `ctx`, then return the next
    /// blocking [`Action`].
    fn resume(&mut self, ctx: &mut ProcCtx<'_>, why: Resumed) -> Action;
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Master random seed; all named streams derive from it.
    pub seed: u64,
    /// Stop the clock at this time (events beyond it are not executed).
    pub until: Option<f64>,
    /// Hard cap on processed events (runaway guard).
    pub max_events: u64,
    /// Which calendar implementation to use (ablation A3).
    pub calendar: CalendarKind,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            seed: 0x5EED,
            until: None,
            max_events: 100_000_000,
            calendar: CalendarKind::BinaryHeap,
        }
    }
}

/// Errors surfaced by [`Simulator::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// All remaining processes are blocked and the calendar is empty.
    Deadlock {
        /// Human-readable description of who is blocked on what.
        blocked: Vec<String>,
        /// Time at which the simulation stalled (µs-precision string to
        /// keep Eq).
        at: String,
    },
    /// The `max_events` guard tripped.
    EventLimit(u64),
    /// A model bug: bad release, invalid id, negative hold, …
    Model(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { blocked, at } => {
                write!(
                    f,
                    "deadlock at t={at}: {} blocked process(es): {}",
                    blocked.len(),
                    blocked.join("; ")
                )
            }
            SimError::EventLimit(n) => write!(f, "event limit of {n} exceeded"),
            SimError::Model(m) => write!(f, "model error: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Final report of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Clock value when the simulation ended.
    pub end_time: f64,
    /// Number of calendar events processed.
    pub events_processed: u64,
    /// Number of processes that ran to termination.
    pub processes_completed: usize,
    /// Number of processes spawned in total.
    pub processes_spawned: usize,
    /// Per-facility statistics.
    pub facilities: Vec<FacilityStats>,
    /// True when the run stopped because `until` was reached.
    pub hit_time_limit: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    Runnable,
    Held,
    WaitingFacility(FacilityId),
    /// Waiting for a facility in `Use` mode: grant schedules the release.
    UsingFacility(FacilityId),
    WaitingMailbox(MailboxId),
    WaitingEvent(EventId),
    WaitingStorage(StorageId),
    Terminated,
}

struct ProcSlot {
    name: String,
    body: Option<Box<dyn Process>>,
    state: ProcState,
    /// Pending service time for a `Use` in progress.
    pending_use: Option<f64>,
    /// Message delivered by a send while we waited.
    inbox: Option<Msg>,
    priority: i64,
}

#[derive(Debug, PartialEq, Eq)]
enum Ev {
    Resume(ProcessId, ResumeWhy),
    /// End of a `Use` service period: release and resume the user.
    EndUse(ProcessId, FacilityId),
}

#[derive(Debug, PartialEq, Eq)]
enum ResumeWhy {
    Start,
    HoldDone,
    Granted(FacilityId),
    UseDone(FacilityId),
    Msg,
    EventSet(EventId),
    StorageGranted(StorageId),
}

struct SimEvent {
    name: String,
    set: bool,
    waiters: Vec<ProcessId>,
}

/// The deterministic, single-threaded simulation kernel.
pub struct Simulator {
    config: Config,
    calendar: Box<dyn Calendar<Ev>>,
    clock: SimTime,
    procs: Vec<ProcSlot>,
    facilities: Vec<Facility>,
    mailboxes: Vec<Mailbox>,
    events: Vec<SimEvent>,
    storages: Vec<Storage>,
    events_processed: u64,
    /// Processes spawned during a resume, to be scheduled after it returns.
    spawn_queue: Vec<(ProcessId, SimTime)>,
    pending_error: Option<SimError>,
}

impl Simulator {
    /// Create a simulator with the given configuration.
    pub fn new(config: Config) -> Self {
        let calendar: Box<dyn Calendar<Ev>> = match config.calendar {
            CalendarKind::BinaryHeap => Box::new(BinaryHeapCalendar::new()),
            CalendarKind::SortedVec => Box::new(SortedVecCalendar::new()),
        };
        Self {
            config,
            calendar,
            clock: SimTime::ZERO,
            procs: Vec::new(),
            facilities: Vec::new(),
            mailboxes: Vec::new(),
            events: Vec::new(),
            storages: Vec::new(),
            events_processed: 0,
            spawn_queue: Vec::new(),
            pending_error: None,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.clock.seconds()
    }

    /// Add a facility; returns its id.
    pub fn add_facility(
        &mut self,
        name: &str,
        servers: usize,
        discipline: Discipline,
    ) -> FacilityId {
        self.facilities
            .push(Facility::new(name, servers, discipline));
        FacilityId(self.facilities.len() - 1)
    }

    /// Add a mailbox; returns its id.
    pub fn add_mailbox(&mut self, name: &str) -> MailboxId {
        self.mailboxes.push(Mailbox::new(name));
        MailboxId(self.mailboxes.len() - 1)
    }

    /// Add a synchronization event (initially clear); returns its id.
    pub fn add_event(&mut self, name: &str) -> EventId {
        self.events.push(SimEvent {
            name: name.into(),
            set: false,
            waiters: Vec::new(),
        });
        EventId(self.events.len() - 1)
    }

    /// Add a storage with `capacity` units; returns its id.
    pub fn add_storage(&mut self, name: &str, capacity: u64) -> StorageId {
        self.storages.push(Storage::new(name, capacity));
        StorageId(self.storages.len() - 1)
    }

    /// Spawn a process at the current time (before `run`, that is t=0).
    pub fn spawn(&mut self, name: &str, body: Box<dyn Process>) -> ProcessId {
        self.spawn_at(name, body, self.clock.seconds())
    }

    /// Spawn a process at an absolute time ≥ now.
    pub fn spawn_at(&mut self, name: &str, body: Box<dyn Process>, at: f64) -> ProcessId {
        let at = at.max(self.clock.seconds());
        let pid = ProcessId(self.procs.len());
        self.procs.push(ProcSlot {
            name: name.to_string(),
            body: Some(body),
            state: ProcState::Runnable,
            pending_use: None,
            inbox: None,
            priority: 0,
        });
        self.calendar
            .schedule(SimTime::new(at), Ev::Resume(pid, ResumeWhy::Start));
        pid
    }

    /// Access facility statistics mid-run (by id).
    pub fn facility_stats(&self, id: FacilityId) -> FacilityStats {
        self.facilities[id.0].stats(self.clock.seconds())
    }

    /// Access a mailbox (read-only) for counters and latencies.
    pub fn mailbox(&self, id: MailboxId) -> &Mailbox {
        &self.mailboxes[id.0]
    }

    /// Access a storage (read-only).
    pub fn storage(&self, id: StorageId) -> &Storage {
        &self.storages[id.0]
    }

    /// Run to completion (no runnable work, `until`, or `max_events`).
    pub fn run(&mut self) -> Result<SimReport, SimError> {
        let mut hit_time_limit = false;
        loop {
            if let Some(err) = self.pending_error.take() {
                return Err(err);
            }
            let Some(next_time) = self.calendar.peek_time() else {
                break;
            };
            if let Some(until) = self.config.until {
                if next_time.seconds() > until {
                    self.clock = SimTime::new(until);
                    hit_time_limit = true;
                    break;
                }
            }
            if self.events_processed >= self.config.max_events {
                return Err(SimError::EventLimit(self.config.max_events));
            }
            let entry = self.calendar.pop().expect("peeked");
            debug_assert!(entry.time >= self.clock, "calendar violated causality");
            self.clock = entry.time;
            self.events_processed += 1;
            match entry.payload {
                Ev::Resume(pid, why) => self.do_resume(pid, why),
                Ev::EndUse(pid, fid) => self.end_use(pid, fid),
            }
        }
        // Anything still non-terminated is deadlocked (or the time limit
        // cut the run short — then blocked processes are expected).
        let blocked: Vec<String> = self
            .procs
            .iter()
            .filter(|p| p.state != ProcState::Terminated)
            .map(|p| format!("{} ({})", p.name, describe_state(p.state, self)))
            .collect();
        if !blocked.is_empty() && !hit_time_limit {
            return Err(SimError::Deadlock {
                blocked,
                at: format!("{:.6}", self.clock.seconds()),
            });
        }
        Ok(SimReport {
            end_time: self.clock.seconds(),
            events_processed: self.events_processed,
            processes_completed: self
                .procs
                .iter()
                .filter(|p| p.state == ProcState::Terminated)
                .count(),
            processes_spawned: self.procs.len(),
            facilities: self
                .facilities
                .iter()
                .map(|f| f.stats(self.clock.seconds()))
                .collect(),
            hit_time_limit,
        })
    }

    fn do_resume(&mut self, pid: ProcessId, why: ResumeWhy) {
        let slot = &mut self.procs[pid.0];
        if slot.state == ProcState::Terminated {
            return;
        }
        let mut body = slot
            .body
            .take()
            .expect("process body present while resumable");
        let resumed = match why {
            ResumeWhy::Start => Resumed::Start,
            ResumeWhy::HoldDone => Resumed::HoldDone,
            ResumeWhy::Granted(f) => Resumed::Granted(f),
            ResumeWhy::UseDone(f) => Resumed::UseDone(f),
            ResumeWhy::Msg => {
                let msg = self.procs[pid.0].inbox.take().expect("message delivered");
                Resumed::MsgReceived(msg)
            }
            ResumeWhy::EventSet(e) => Resumed::EventSet(e),
            ResumeWhy::StorageGranted(s) => Resumed::StorageGranted(s),
        };
        let action = {
            let mut ctx = ProcCtx { sim: self, pid };
            body.resume(&mut ctx, resumed)
        };
        self.procs[pid.0].body = Some(body);
        self.apply_action(pid, action);
        // Schedule any processes spawned during the resume.
        for (spid, at) in std::mem::take(&mut self.spawn_queue) {
            self.calendar
                .schedule(at, Ev::Resume(spid, ResumeWhy::Start));
        }
    }

    fn apply_action(&mut self, pid: ProcessId, action: Action) {
        let now = self.clock.seconds();
        match action {
            Action::Hold(dt) => {
                if !(dt.is_finite() && dt >= 0.0) {
                    self.fail(format!(
                        "process `{}` requested invalid hold of {dt}",
                        self.procs[pid.0].name
                    ));
                    return;
                }
                self.procs[pid.0].state = ProcState::Held;
                self.calendar
                    .schedule(self.clock + dt, Ev::Resume(pid, ResumeWhy::HoldDone));
            }
            Action::Reserve(fid) => {
                if fid.0 >= self.facilities.len() {
                    self.fail(format!("reserve on unknown facility {fid:?}"));
                    return;
                }
                let prio = self.procs[pid.0].priority;
                if self.facilities[fid.0].reserve(pid, prio, now) {
                    self.procs[pid.0].state = ProcState::Runnable;
                    self.calendar
                        .schedule(self.clock, Ev::Resume(pid, ResumeWhy::Granted(fid)));
                } else {
                    self.procs[pid.0].state = ProcState::WaitingFacility(fid);
                }
            }
            Action::Use(fid, dt) => {
                if fid.0 >= self.facilities.len() {
                    self.fail(format!("use of unknown facility {fid:?}"));
                    return;
                }
                if !(dt.is_finite() && dt >= 0.0) {
                    self.fail(format!(
                        "process `{}` requested invalid use time {dt}",
                        self.procs[pid.0].name
                    ));
                    return;
                }
                let prio = self.procs[pid.0].priority;
                self.procs[pid.0].pending_use = Some(dt);
                if self.facilities[fid.0].reserve(pid, prio, now) {
                    self.procs[pid.0].pending_use = None;
                    self.procs[pid.0].state = ProcState::Held;
                    self.calendar
                        .schedule(self.clock + dt, Ev::EndUse(pid, fid));
                } else {
                    self.procs[pid.0].state = ProcState::UsingFacility(fid);
                }
            }
            Action::Receive(mid) => {
                if mid.0 >= self.mailboxes.len() {
                    self.fail(format!("receive on unknown mailbox {mid:?}"));
                    return;
                }
                match self.mailboxes[mid.0].receive(pid, now) {
                    Some(msg) => {
                        self.procs[pid.0].inbox = Some(msg);
                        self.procs[pid.0].state = ProcState::Runnable;
                        self.calendar
                            .schedule(self.clock, Ev::Resume(pid, ResumeWhy::Msg));
                    }
                    None => {
                        self.procs[pid.0].state = ProcState::WaitingMailbox(mid);
                    }
                }
            }
            Action::WaitEvent(eid) => {
                if eid.0 >= self.events.len() {
                    self.fail(format!("wait on unknown event {eid:?}"));
                    return;
                }
                if self.events[eid.0].set {
                    self.procs[pid.0].state = ProcState::Runnable;
                    self.calendar
                        .schedule(self.clock, Ev::Resume(pid, ResumeWhy::EventSet(eid)));
                } else {
                    self.events[eid.0].waiters.push(pid);
                    self.procs[pid.0].state = ProcState::WaitingEvent(eid);
                }
            }
            Action::Acquire(sid, amount) => {
                if sid.0 >= self.storages.len() {
                    self.fail(format!("acquire on unknown storage {sid:?}"));
                    return;
                }
                match self.storages[sid.0].acquire(pid, amount, now) {
                    Ok(true) => {
                        self.procs[pid.0].state = ProcState::Runnable;
                        self.calendar
                            .schedule(self.clock, Ev::Resume(pid, ResumeWhy::StorageGranted(sid)));
                    }
                    Ok(false) => {
                        self.procs[pid.0].state = ProcState::WaitingStorage(sid);
                    }
                    Err(e) => self.fail(e),
                }
            }
            Action::Terminate => {
                self.procs[pid.0].state = ProcState::Terminated;
                self.procs[pid.0].body = None;
            }
        }
    }

    fn end_use(&mut self, pid: ProcessId, fid: FacilityId) {
        match self.facilities[fid.0].release(pid, self.clock.seconds()) {
            Ok(next) => {
                if let Some(next_pid) = next {
                    self.grant_after_wait(next_pid, fid);
                }
                self.do_resume(pid, ResumeWhy::UseDone(fid));
            }
            Err(e) => self.fail(e),
        }
    }

    /// A facility handed a freed server to `pid` (who was queued).
    fn grant_after_wait(&mut self, pid: ProcessId, fid: FacilityId) {
        match self.procs[pid.0].state {
            ProcState::WaitingFacility(f) if f == fid => {
                self.procs[pid.0].state = ProcState::Runnable;
                self.calendar
                    .schedule(self.clock, Ev::Resume(pid, ResumeWhy::Granted(fid)));
            }
            ProcState::UsingFacility(f) if f == fid => {
                let dt = self.procs[pid.0]
                    .pending_use
                    .take()
                    .expect("pending use time");
                self.procs[pid.0].state = ProcState::Held;
                self.calendar
                    .schedule(self.clock + dt, Ev::EndUse(pid, fid));
            }
            other => {
                panic!("facility {fid:?} granted to process {pid:?} in unexpected state {other:?}")
            }
        }
    }

    fn fail(&mut self, message: String) {
        if self.pending_error.is_none() {
            self.pending_error = Some(SimError::Model(message));
        }
    }
}

fn describe_state(state: ProcState, sim: &Simulator) -> String {
    match state {
        ProcState::Runnable => "runnable".into(),
        ProcState::Held => "holding".into(),
        ProcState::WaitingFacility(f) | ProcState::UsingFacility(f) => {
            format!("waiting for facility `{}`", sim.facilities[f.0].name())
        }
        ProcState::WaitingMailbox(m) => {
            format!("waiting on mailbox `{}`", sim.mailboxes[m.0].name())
        }
        ProcState::WaitingEvent(e) => format!("waiting on event `{}`", sim.events[e.0].name),
        ProcState::WaitingStorage(s) => {
            format!("waiting on storage `{}`", sim.storages[s.0].name())
        }
        ProcState::Terminated => "terminated".into(),
    }
}

/// The non-blocking interface a process uses during [`Process::resume`].
pub struct ProcCtx<'a> {
    sim: &'a mut Simulator,
    pid: ProcessId,
}

impl<'a> ProcCtx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.sim.clock.seconds()
    }

    /// This process's id.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// This process's name.
    pub fn name(&self) -> &str {
        &self.sim.procs[self.pid.0].name
    }

    /// Set this process's facility-queue priority (used by
    /// [`Discipline::Priority`] facilities).
    pub fn set_priority(&mut self, priority: i64) {
        self.sim.procs[self.pid.0].priority = priority;
    }

    /// Spawn a new process at the current time. It first runs after the
    /// current resume returns.
    pub fn spawn(&mut self, name: &str, body: Box<dyn Process>) -> ProcessId {
        let pid = ProcessId(self.sim.procs.len());
        self.sim.procs.push(ProcSlot {
            name: name.to_string(),
            body: Some(body),
            state: ProcState::Runnable,
            pending_use: None,
            inbox: None,
            priority: 0,
        });
        self.sim.spawn_queue.push((pid, self.sim.clock));
        pid
    }

    /// Send a message (non-blocking). Wakes a waiting receiver if present.
    pub fn send(&mut self, mailbox: MailboxId, mut msg: Msg) {
        msg.sent_at = self.now();
        msg.from = self.pid;
        let now = self.now();
        if let Some((receiver, msg)) = self.sim.mailboxes[mailbox.0].send(msg, now) {
            self.sim.procs[receiver.0].inbox = Some(msg);
            self.sim.procs[receiver.0].state = ProcState::Runnable;
            self.sim
                .calendar
                .schedule(self.sim.clock, Ev::Resume(receiver, ResumeWhy::Msg));
        }
    }

    /// Release a facility server previously obtained via
    /// [`Action::Reserve`]. Model errors (releasing something not held)
    /// abort the run.
    pub fn release(&mut self, facility: FacilityId) {
        let now = self.now();
        match self.sim.facilities[facility.0].release(self.pid, now) {
            Ok(Some(next)) => self.sim.grant_after_wait(next, facility),
            Ok(None) => {}
            Err(e) => self.sim.fail(e),
        }
    }

    /// Set an event, waking all waiters.
    pub fn set_event(&mut self, event: EventId) {
        let ev = &mut self.sim.events[event.0];
        ev.set = true;
        let waiters = std::mem::take(&mut ev.waiters);
        for pid in waiters {
            self.sim.procs[pid.0].state = ProcState::Runnable;
            self.sim
                .calendar
                .schedule(self.sim.clock, Ev::Resume(pid, ResumeWhy::EventSet(event)));
        }
    }

    /// Clear an event.
    pub fn clear_event(&mut self, event: EventId) {
        self.sim.events[event.0].set = false;
    }

    /// True if the event is currently set.
    pub fn event_is_set(&self, event: EventId) -> bool {
        self.sim.events[event.0].set
    }

    /// Release storage units previously acquired.
    pub fn release_storage(&mut self, storage: StorageId, amount: u64) {
        let now = self.now();
        match self.sim.storages[storage.0].release(amount, now) {
            Ok(granted) => {
                for pid in granted {
                    debug_assert_eq!(
                        self.sim.procs[pid.0].state,
                        ProcState::WaitingStorage(storage)
                    );
                    self.sim.procs[pid.0].state = ProcState::Runnable;
                    self.sim.calendar.schedule(
                        self.sim.clock,
                        Ev::Resume(pid, ResumeWhy::StorageGranted(storage)),
                    );
                }
            }
            Err(e) => self.sim.fail(e),
        }
    }

    /// A named reproducible random stream (derived from the master seed).
    pub fn random_stream(&self, name: &str) -> RandomStream {
        RandomStream::derive(self.sim.config.seed, name)
    }

    /// Number of queued messages in a mailbox (non-blocking probe).
    pub fn mailbox_queued(&self, mailbox: MailboxId) -> usize {
        self.sim.mailboxes[mailbox.0].queued()
    }
}

/// Convenience: run a list of simple closure-driven processes. Each entry
/// is `(name, script)` where `script` is a sequence of actions replayed in
/// order; the process terminates after the last one.
///
/// This is sugar for tests and examples; real models implement
/// [`Process`].
pub fn run_scripts(
    config: Config,
    setup: impl FnOnce(&mut Simulator) -> Vec<(String, Vec<Action>)>,
) -> Result<SimReport, SimError> {
    struct Scripted {
        actions: std::vec::IntoIter<Action>,
    }
    impl Process for Scripted {
        fn resume(&mut self, _ctx: &mut ProcCtx<'_>, _why: Resumed) -> Action {
            self.actions.next().unwrap_or(Action::Terminate)
        }
    }
    let mut sim = Simulator::new(config);
    for (name, actions) in setup(&mut sim) {
        sim.spawn(
            &name,
            Box::new(Scripted {
                actions: actions.into_iter(),
            }),
        );
    }
    sim.run()
}

/// Deterministic map of named values carried by some reports (reserved for
/// estimator extensions; kept here so the type is shared).
pub type Metrics = HashMap<String, f64>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_hold() {
        let report = run_scripts(Config::default(), |_| {
            vec![("p".into(), vec![Action::Hold(2.5)])]
        })
        .unwrap();
        assert_eq!(report.end_time, 2.5);
        assert_eq!(report.processes_completed, 1);
    }

    #[test]
    fn holds_accumulate() {
        let report = run_scripts(Config::default(), |_| {
            vec![(
                "p".into(),
                vec![Action::Hold(1.0), Action::Hold(2.0), Action::Hold(0.5)],
            )]
        })
        .unwrap();
        assert_eq!(report.end_time, 3.5);
    }

    #[test]
    fn parallel_processes_max_time() {
        let report = run_scripts(Config::default(), |_| {
            vec![
                ("a".into(), vec![Action::Hold(1.0)]),
                ("b".into(), vec![Action::Hold(5.0)]),
                ("c".into(), vec![Action::Hold(3.0)]),
            ]
        })
        .unwrap();
        assert_eq!(report.end_time, 5.0);
        assert_eq!(report.processes_completed, 3);
    }

    #[test]
    fn facility_serializes_users() {
        // Two processes each use a 1-server CPU for 2s: total 4s.
        let mut sim = Simulator::new(Config::default());
        let cpu = sim.add_facility("cpu", 1, Discipline::Fcfs);
        struct User {
            cpu: FacilityId,
        }
        impl Process for User {
            fn resume(&mut self, _ctx: &mut ProcCtx<'_>, why: Resumed) -> Action {
                match why {
                    Resumed::Start => Action::Use(self.cpu, 2.0),
                    _ => Action::Terminate,
                }
            }
        }
        sim.spawn("u1", Box::new(User { cpu }));
        sim.spawn("u2", Box::new(User { cpu }));
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, 4.0);
        let f = &report.facilities[0];
        assert_eq!(f.completions, 2);
        assert!((f.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_server_facility_parallelizes() {
        let mut sim = Simulator::new(Config::default());
        let cpu = sim.add_facility("cpu", 2, Discipline::Fcfs);
        struct User {
            cpu: FacilityId,
        }
        impl Process for User {
            fn resume(&mut self, _ctx: &mut ProcCtx<'_>, why: Resumed) -> Action {
                match why {
                    Resumed::Start => Action::Use(self.cpu, 2.0),
                    _ => Action::Terminate,
                }
            }
        }
        for i in 0..4 {
            sim.spawn(&format!("u{i}"), Box::new(User { cpu }));
        }
        let report = sim.run().unwrap();
        // 4 × 2s of work over 2 servers = 4s wall-clock.
        assert_eq!(report.end_time, 4.0);
    }

    #[test]
    fn reserve_release_cycle() {
        let mut sim = Simulator::new(Config::default());
        let cpu = sim.add_facility("cpu", 1, Discipline::Fcfs);
        struct User {
            cpu: FacilityId,
        }
        impl Process for User {
            fn resume(&mut self, ctx: &mut ProcCtx<'_>, why: Resumed) -> Action {
                match why {
                    Resumed::Start => Action::Reserve(self.cpu),
                    Resumed::Granted(f) => {
                        assert_eq!(f, self.cpu);
                        Action::Hold(1.0)
                    }
                    Resumed::HoldDone => {
                        ctx.release(self.cpu);
                        Action::Terminate
                    }
                    other => panic!("unexpected resume {other:?}"),
                }
            }
        }
        sim.spawn("u1", Box::new(User { cpu }));
        sim.spawn("u2", Box::new(User { cpu }));
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, 2.0);
    }

    #[test]
    fn message_ping_pong() {
        let mut sim = Simulator::new(Config::default());
        let a2b = sim.add_mailbox("a2b");
        let b2a = sim.add_mailbox("b2a");

        struct Ping {
            a2b: MailboxId,
            b2a: MailboxId,
            rounds: u32,
        }
        impl Process for Ping {
            fn resume(&mut self, ctx: &mut ProcCtx<'_>, why: Resumed) -> Action {
                match why {
                    Resumed::Start | Resumed::MsgReceived(_) => {
                        if self.rounds == 0 {
                            return Action::Terminate;
                        }
                        self.rounds -= 1;
                        ctx.send(
                            self.a2b,
                            Msg {
                                from: ctx.pid(),
                                tag: 0,
                                payload: 0.0,
                                size_bytes: 8,
                                sent_at: 0.0,
                            },
                        );
                        Action::Receive(self.b2a)
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        struct Pong {
            a2b: MailboxId,
            b2a: MailboxId,
            rounds: u32,
        }
        impl Process for Pong {
            fn resume(&mut self, ctx: &mut ProcCtx<'_>, why: Resumed) -> Action {
                match why {
                    Resumed::Start => Action::Receive(self.a2b),
                    Resumed::MsgReceived(_) => {
                        self.rounds -= 1;
                        ctx.send(
                            self.b2a,
                            Msg {
                                from: ctx.pid(),
                                tag: 0,
                                payload: 0.0,
                                size_bytes: 8,
                                sent_at: 0.0,
                            },
                        );
                        if self.rounds == 0 {
                            Action::Terminate
                        } else {
                            Action::Receive(self.a2b)
                        }
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        sim.spawn(
            "ping",
            Box::new(Ping {
                a2b,
                b2a,
                rounds: 10,
            }),
        );
        sim.spawn(
            "pong",
            Box::new(Pong {
                a2b,
                b2a,
                rounds: 10,
            }),
        );
        let report = sim.run().unwrap();
        assert_eq!(report.processes_completed, 2);
        assert_eq!(sim.mailbox(a2b).send_count(), 10);
        assert_eq!(sim.mailbox(b2a).send_count(), 10);
    }

    #[test]
    fn event_barrier() {
        let mut sim = Simulator::new(Config::default());
        let ev = sim.add_event("go");
        struct Waiter {
            ev: EventId,
        }
        impl Process for Waiter {
            fn resume(&mut self, _ctx: &mut ProcCtx<'_>, why: Resumed) -> Action {
                match why {
                    Resumed::Start => Action::WaitEvent(self.ev),
                    Resumed::EventSet(_) => Action::Hold(1.0),
                    Resumed::HoldDone => Action::Terminate,
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        struct Setter {
            ev: EventId,
            fired: bool,
        }
        impl Process for Setter {
            fn resume(&mut self, ctx: &mut ProcCtx<'_>, _why: Resumed) -> Action {
                if !self.fired {
                    self.fired = true;
                    return Action::Hold(3.0);
                }
                ctx.set_event(self.ev);
                Action::Terminate
            }
        }
        sim.spawn("w1", Box::new(Waiter { ev }));
        sim.spawn("w2", Box::new(Waiter { ev }));
        sim.spawn("setter", Box::new(Setter { ev, fired: false }));
        let report = sim.run().unwrap();
        // Waiters proceed at t=3 and hold 1s.
        assert_eq!(report.end_time, 4.0);
    }

    #[test]
    fn wait_on_set_event_is_noop() {
        let mut sim = Simulator::new(Config::default());
        let ev = sim.add_event("pre");
        struct Setter {
            ev: EventId,
        }
        impl Process for Setter {
            fn resume(&mut self, ctx: &mut ProcCtx<'_>, _why: Resumed) -> Action {
                ctx.set_event(self.ev);
                Action::Terminate
            }
        }
        struct Waiter {
            ev: EventId,
        }
        impl Process for Waiter {
            fn resume(&mut self, _ctx: &mut ProcCtx<'_>, why: Resumed) -> Action {
                match why {
                    Resumed::Start => Action::Hold(1.0), // let setter run
                    Resumed::HoldDone => Action::WaitEvent(self.ev),
                    Resumed::EventSet(_) => Action::Terminate,
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        sim.spawn("setter", Box::new(Setter { ev }));
        sim.spawn("waiter", Box::new(Waiter { ev }));
        assert_eq!(sim.run().unwrap().processes_completed, 2);
    }

    #[test]
    fn storage_blocks_and_grants() {
        let mut sim = Simulator::new(Config::default());
        let mem = sim.add_storage("mem", 10);
        struct Holder {
            mem: StorageId,
        }
        impl Process for Holder {
            fn resume(&mut self, ctx: &mut ProcCtx<'_>, why: Resumed) -> Action {
                match why {
                    Resumed::Start => Action::Acquire(self.mem, 8),
                    Resumed::StorageGranted(_) => Action::Hold(2.0),
                    Resumed::HoldDone => {
                        ctx.release_storage(self.mem, 8);
                        Action::Terminate
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        sim.spawn("h1", Box::new(Holder { mem }));
        sim.spawn("h2", Box::new(Holder { mem }));
        let report = sim.run().unwrap();
        // Serialized by the 8/10 requirement: 2s + 2s.
        assert_eq!(report.end_time, 4.0);
    }

    #[test]
    fn deadlock_detected_with_names() {
        let mut sim = Simulator::new(Config::default());
        let mb = sim.add_mailbox("never");
        struct Stuck {
            mb: MailboxId,
        }
        impl Process for Stuck {
            fn resume(&mut self, _ctx: &mut ProcCtx<'_>, _why: Resumed) -> Action {
                Action::Receive(self.mb)
            }
        }
        sim.spawn("stuck-proc", Box::new(Stuck { mb }));
        let err = sim.run().unwrap_err();
        match err {
            SimError::Deadlock { blocked, .. } => {
                assert_eq!(blocked.len(), 1);
                assert!(blocked[0].contains("stuck-proc"));
                assert!(blocked[0].contains("never"));
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn until_cuts_run_short() {
        let report = run_scripts(
            Config {
                until: Some(2.0),
                ..Default::default()
            },
            |_| vec![("long".into(), vec![Action::Hold(100.0)])],
        )
        .unwrap();
        assert_eq!(report.end_time, 2.0);
        assert!(report.hit_time_limit);
        assert_eq!(report.processes_completed, 0);
    }

    #[test]
    fn event_limit_guard() {
        let config = Config {
            max_events: 10,
            ..Config::default()
        };
        let mut sim = Simulator::new(config);
        struct Spinner;
        impl Process for Spinner {
            fn resume(&mut self, _ctx: &mut ProcCtx<'_>, _why: Resumed) -> Action {
                Action::Hold(0.001)
            }
        }
        sim.spawn("spin", Box::new(Spinner));
        assert_eq!(sim.run().unwrap_err(), SimError::EventLimit(10));
    }

    #[test]
    fn negative_hold_is_model_error() {
        let mut sim = Simulator::new(Config::default());
        struct Bad;
        impl Process for Bad {
            fn resume(&mut self, _ctx: &mut ProcCtx<'_>, _why: Resumed) -> Action {
                Action::Hold(-1.0)
            }
        }
        sim.spawn("bad", Box::new(Bad));
        match sim.run().unwrap_err() {
            SimError::Model(m) => assert!(m.contains("invalid hold")),
            other => panic!("expected model error, got {other}"),
        }
    }

    #[test]
    fn spawn_from_process() {
        let mut sim = Simulator::new(Config::default());
        struct Parent;
        struct Child;
        impl Process for Child {
            fn resume(&mut self, _ctx: &mut ProcCtx<'_>, why: Resumed) -> Action {
                match why {
                    Resumed::Start => Action::Hold(2.0),
                    _ => Action::Terminate,
                }
            }
        }
        impl Process for Parent {
            fn resume(&mut self, ctx: &mut ProcCtx<'_>, why: Resumed) -> Action {
                match why {
                    Resumed::Start => {
                        ctx.spawn("child-a", Box::new(Child));
                        ctx.spawn("child-b", Box::new(Child));
                        Action::Hold(1.0)
                    }
                    _ => Action::Terminate,
                }
            }
        }
        sim.spawn("parent", Box::new(Parent));
        let report = sim.run().unwrap();
        assert_eq!(report.processes_spawned, 3);
        assert_eq!(report.processes_completed, 3);
        assert_eq!(report.end_time, 2.0);
    }

    #[test]
    fn determinism_across_runs() {
        fn run_once() -> (f64, u64) {
            let mut sim = Simulator::new(Config::default());
            let cpu = sim.add_facility("cpu", 2, Discipline::Fcfs);
            struct Noisy {
                cpu: FacilityId,
                left: u32,
            }
            impl Process for Noisy {
                fn resume(&mut self, ctx: &mut ProcCtx<'_>, why: Resumed) -> Action {
                    match why {
                        Resumed::Start | Resumed::UseDone(_) => {
                            if self.left == 0 {
                                return Action::Terminate;
                            }
                            self.left -= 1;
                            let mut rng = ctx.random_stream(&format!("noise-{}", ctx.name()));
                            Action::Use(self.cpu, rng.exponential(0.3))
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
            }
            for i in 0..8 {
                sim.spawn(&format!("n{i}"), Box::new(Noisy { cpu, left: 20 }));
            }
            let r = sim.run().unwrap();
            (r.end_time, r.events_processed)
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn calendar_kinds_agree() {
        fn run_kind(kind: CalendarKind) -> (f64, u64) {
            let mut sim = Simulator::new(Config {
                calendar: kind,
                ..Default::default()
            });
            let cpu = sim.add_facility("cpu", 1, Discipline::Fcfs);
            struct U {
                cpu: FacilityId,
                n: u32,
            }
            impl Process for U {
                fn resume(&mut self, _ctx: &mut ProcCtx<'_>, why: Resumed) -> Action {
                    match why {
                        Resumed::Start | Resumed::UseDone(_) => {
                            if self.n == 0 {
                                return Action::Terminate;
                            }
                            self.n -= 1;
                            Action::Use(self.cpu, 0.25)
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
            }
            for i in 0..4 {
                sim.spawn(&format!("u{i}"), Box::new(U { cpu, n: 10 }));
            }
            let r = sim.run().unwrap();
            (r.end_time, r.events_processed)
        }
        assert_eq!(
            run_kind(CalendarKind::BinaryHeap),
            run_kind(CalendarKind::SortedVec)
        );
    }
}
