//! Simulation time: a totally ordered wrapper over `f64`.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Simulated time in seconds.
///
/// Invariant: the contained value is finite and non-negative; constructors
/// enforce it, which is what makes `Ord` sound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from seconds.
    ///
    /// # Panics
    /// Panics on NaN, infinity, or negative values — those are programming
    /// errors in cost functions and must not silently corrupt the calendar.
    pub fn new(seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "SimTime must be finite and non-negative, got {seconds}"
        );
        SimTime(seconds)
    }

    /// Construct, returning `None` for invalid values instead of panicking.
    pub fn try_new(seconds: f64) -> Option<Self> {
        (seconds.is_finite() && seconds >= 0.0).then_some(SimTime(seconds))
    }

    /// Seconds as `f64`.
    pub fn seconds(self) -> f64 {
        self.0
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Safe: construction guarantees finite values.
        self.0
            .partial_cmp(&other.0)
            .expect("SimTime is always finite")
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime::new(self.0 + rhs.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: f64) -> SimTime {
        SimTime::new(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = f64;
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(SimTime::ZERO.min(a), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::new(1.5) + 0.5;
        assert_eq!(t.seconds(), 2.0);
        assert_eq!(t - SimTime::new(0.5), 1.5);
        let mut u = SimTime::ZERO;
        u += 3.0;
        assert_eq!(u.seconds(), 3.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_rejected() {
        let _ = SimTime::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_rejected() {
        let _ = SimTime::new(-1.0);
    }

    #[test]
    fn try_new() {
        assert!(SimTime::try_new(1.0).is_some());
        assert!(SimTime::try_new(-1.0).is_none());
        assert!(SimTime::try_new(f64::INFINITY).is_none());
    }

    #[test]
    fn display_fixed_precision() {
        assert_eq!(SimTime::new(0.5).to_string(), "0.500000");
    }
}
