//! # prophet-sim
//!
//! A process-oriented discrete-event simulation (DES) engine — the
//! substrate that replaces **CSIM** in the Performance Prophet architecture
//! (Figure 2 of Pllana et al., ICPP-W 2008: the Performance Estimator
//! evaluates the integrated program+machine model on the "CSIM Simulation
//! Engine").
//!
//! CSIM is a commercial C/C++ library; this crate re-implements the
//! primitives Performance Prophet relies on:
//!
//! * **processes** — model entities (one per simulated MPI process or
//!   OpenMP thread) that alternate between computing and waiting,
//! * **`hold(t)`** — advance a process through simulated time,
//! * **facilities** — servers with queues (CPUs, interconnect links),
//!   reserved/used/released by processes,
//! * **mailboxes** — typed message queues used to model MPI messages,
//! * **events** — binary synchronization flags (barriers, broadcasts),
//! * **storages** — counting resources (memory, bandwidth tokens),
//! * **statistics** — utilizations, queue lengths, response times.
//!
//! ## Execution model
//!
//! Rust has no built-in coroutines, so processes are written as *resumable
//! state machines*: the kernel calls [`Process::resume`] with the reason
//! the process woke up ([`Resumed`]), and the process returns the next
//! *blocking* request ([`Action`]). Non-blocking operations (sending a
//! message, releasing a facility, spawning a process, setting an event)
//! are performed immediately through [`ProcCtx`]. This is the classic
//! event-driven encoding of process-oriented simulation; determinism falls
//! out for free because the kernel is single-threaded and every queue is
//! FIFO with a stable tie-break.
//!
//! ## Determinism
//!
//! Runs are reproducible bit-for-bit: the event calendar breaks time ties
//! by insertion sequence, queues are FIFO, and all randomness comes from
//! named [`random::RandomStream`]s derived from the configured seed.
//!
//! ## Quickstart
//!
//! ```
//! use prophet_sim::{Action, Process, ProcCtx, Resumed, Simulator};
//!
//! /// A process that computes for 1.5 time units and terminates.
//! struct Worker;
//! impl Process for Worker {
//!     fn resume(&mut self, _ctx: &mut ProcCtx<'_>, why: Resumed) -> Action {
//!         match why {
//!             Resumed::Start => Action::Hold(1.5),
//!             _ => Action::Terminate,
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new(Default::default());
//! sim.spawn("worker", Box::new(Worker));
//! let report = sim.run().unwrap();
//! assert_eq!(report.end_time, 1.5);
//! ```

pub mod calendar;
pub mod facility;
pub mod kernel;
pub mod mailbox;
pub mod random;
pub mod stats;
pub mod storage;
pub mod time;

pub use calendar::{BinaryHeapCalendar, Calendar, CalendarKind, SortedVecCalendar};
pub use facility::{Discipline, Facility, FacilityStats};
pub use kernel::{
    Action, Config, EventId, FacilityId, MailboxId, ProcCtx, Process, ProcessId, Resumed, SimError,
    SimReport, Simulator, StorageId,
};
pub use mailbox::{Mailbox, Msg};
pub use random::RandomStream;
pub use stats::{Histogram, Tally, TimeWeighted};
pub use storage::Storage;
pub use time::SimTime;
