//! The event calendar: pending simulation events ordered by time.
//!
//! Two implementations share the [`Calendar`] trait so DESIGN.md ablation
//! A3 can compare them under `bench_sim`:
//!
//! * [`BinaryHeapCalendar`] — `O(log n)` push/pop, the production default;
//! * [`SortedVecCalendar`] — insertion-sorted vec, `O(n)` insert,
//!   `O(1)` pop. Competitive only at very small pending-set sizes.
//!
//! Both are deterministic: ties in time are broken by a monotonically
//! increasing sequence number assigned at insertion.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the calendar: fire `payload` at `time`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry<T> {
    /// When the event fires.
    pub time: SimTime,
    /// Insertion sequence (tie-break; smaller fires first).
    pub seq: u64,
    /// The scheduled payload.
    pub payload: T,
}

impl<T: Eq> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: Eq> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for BinaryHeap (max-heap → min-queue).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Pending-event set ordered by `(time, seq)`.
pub trait Calendar<T> {
    /// Schedule `payload` at `time`. Returns the assigned sequence number.
    fn schedule(&mut self, time: SimTime, payload: T) -> u64;
    /// Remove and return the earliest entry.
    fn pop(&mut self) -> Option<Entry<T>>;
    /// Time of the earliest entry without removing it.
    fn peek_time(&self) -> Option<SimTime>;
    /// Number of pending entries.
    fn len(&self) -> usize;
    /// True when no entries are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Which calendar implementation a [`crate::Simulator`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CalendarKind {
    /// Binary heap (default).
    #[default]
    BinaryHeap,
    /// Insertion-sorted vector (ablation A3).
    SortedVec,
}

/// Binary-heap calendar (production default).
#[derive(Debug)]
pub struct BinaryHeapCalendar<T: Eq> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T: Eq> Default for BinaryHeapCalendar<T> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<T: Eq> BinaryHeapCalendar<T> {
    /// Empty calendar.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<T: Eq> Calendar<T> for BinaryHeapCalendar<T> {
    fn schedule(&mut self, time: SimTime, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        seq
    }

    fn pop(&mut self) -> Option<Entry<T>> {
        self.heap.pop()
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Insertion-sorted vector calendar, kept in *reverse* order so `pop` is
/// `Vec::pop` (`O(1)`).
#[derive(Debug)]
pub struct SortedVecCalendar<T: Eq> {
    // Sorted descending by (time, seq): the next event is at the end.
    entries: Vec<Entry<T>>,
    next_seq: u64,
}

impl<T: Eq> Default for SortedVecCalendar<T> {
    fn default() -> Self {
        Self {
            entries: Vec::new(),
            next_seq: 0,
        }
    }
}

impl<T: Eq> SortedVecCalendar<T> {
    /// Empty calendar.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<T: Eq> Calendar<T> for SortedVecCalendar<T> {
    fn schedule(&mut self, time: SimTime, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry { time, seq, payload };
        // Find insertion point from the back (new events are usually late,
        // i.e. near the front of the reversed vec).
        let key = (entry.time, entry.seq);
        let idx = self
            .entries
            .binary_search_by(|probe| {
                // Descending order: larger keys first.
                key.cmp(&(probe.time, probe.seq))
            })
            .unwrap_or_else(|i| i);
        self.entries.insert(idx, entry);
        seq
    }

    fn pop(&mut self) -> Option<Entry<T>> {
        self.entries.pop()
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.entries.last().map(|e| e.time)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(cal: &mut dyn Calendar<u32>) {
        cal.schedule(SimTime::new(3.0), 30);
        cal.schedule(SimTime::new(1.0), 10);
        cal.schedule(SimTime::new(2.0), 20);
        // Tie at t=1.0 — insertion order wins.
        cal.schedule(SimTime::new(1.0), 11);

        assert_eq!(cal.len(), 4);
        assert_eq!(cal.peek_time(), Some(SimTime::new(1.0)));
        assert_eq!(cal.pop().unwrap().payload, 10);
        assert_eq!(cal.pop().unwrap().payload, 11);
        assert_eq!(cal.pop().unwrap().payload, 20);
        assert_eq!(cal.pop().unwrap().payload, 30);
        assert!(cal.pop().is_none());
        assert!(cal.is_empty());
    }

    #[test]
    fn heap_ordering_and_ties() {
        exercise(&mut BinaryHeapCalendar::new());
    }

    #[test]
    fn sorted_vec_ordering_and_ties() {
        exercise(&mut SortedVecCalendar::new());
    }

    #[test]
    fn implementations_agree_on_random_schedule() {
        let mut heap = BinaryHeapCalendar::new();
        let mut vec = SortedVecCalendar::new();
        // Deterministic pseudo-random times (LCG), including duplicates.
        let mut x: u64 = 12345;
        for i in 0..1000u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = ((x >> 33) % 100) as f64 * 0.5;
            heap.schedule(SimTime::new(t), i);
            vec.schedule(SimTime::new(t), i);
        }
        for _ in 0..1000 {
            let a = heap.pop().unwrap();
            let b = vec.pop().unwrap();
            assert_eq!((a.time, a.seq, a.payload), (b.time, b.seq, b.payload));
        }
        assert!(heap.pop().is_none() && vec.pop().is_none());
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut cal = BinaryHeapCalendar::new();
        cal.schedule(SimTime::new(5.0), 1);
        assert_eq!(cal.pop().unwrap().payload, 1);
        cal.schedule(SimTime::new(2.0), 2);
        cal.schedule(SimTime::new(1.0), 3);
        assert_eq!(cal.pop().unwrap().payload, 3);
        cal.schedule(SimTime::new(0.5), 4);
        // 0.5 < 2.0 even though scheduled after the pop at t=1.0 — the
        // calendar itself doesn't enforce causality; the kernel does.
        assert_eq!(cal.pop().unwrap().payload, 4);
        assert_eq!(cal.pop().unwrap().payload, 2);
    }
}
