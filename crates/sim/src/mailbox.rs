//! Mailboxes: typed message queues (CSIM `mailbox`), used by the machine
//! model to carry simulated MPI messages.

use crate::kernel::ProcessId;
use crate::stats::Tally;
use std::collections::VecDeque;

/// A simulated message.
///
/// `payload`/`tag` are free for the model's use (the machine model stores
/// the MPI tag and a numeric payload); `size_bytes` feeds the communication
/// cost model; `sent_at` lets receivers account message latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Msg {
    /// Sending process.
    pub from: ProcessId,
    /// Model-defined tag (e.g. MPI tag).
    pub tag: i64,
    /// Model-defined numeric payload.
    pub payload: f64,
    /// Message size in bytes (drives the Hockney cost model).
    pub size_bytes: u64,
    /// Simulation time at which the message entered the mailbox.
    pub sent_at: f64,
}

/// A FIFO mailbox with blocking receive.
#[derive(Debug)]
pub struct Mailbox {
    name: String,
    messages: VecDeque<Msg>,
    waiters: VecDeque<ProcessId>,
    /// Receive latency (time between send and receive completion).
    latencies: Tally,
    sends: u64,
    receives: u64,
}

impl Mailbox {
    /// Create an empty mailbox.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            messages: VecDeque::new(),
            waiters: VecDeque::new(),
            latencies: Tally::new(),
            sends: 0,
            receives: 0,
        }
    }

    /// Mailbox name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Deposit a message. If a receiver is waiting, returns
    /// `Some((receiver, msg))` — the kernel must resume that receiver and
    /// hand it the message.
    pub fn send(&mut self, msg: Msg, now: f64) -> Option<(ProcessId, Msg)> {
        self.sends += 1;
        if let Some(waiter) = self.waiters.pop_front() {
            self.receives += 1;
            self.latencies.record(now - msg.sent_at);
            Some((waiter, msg))
        } else {
            self.messages.push_back(msg);
            None
        }
    }

    /// Try to receive for `pid`. Returns a message if one is queued;
    /// otherwise registers `pid` as a waiter.
    pub fn receive(&mut self, pid: ProcessId, now: f64) -> Option<Msg> {
        if let Some(msg) = self.messages.pop_front() {
            self.receives += 1;
            self.latencies.record(now - msg.sent_at);
            Some(msg)
        } else {
            self.waiters.push_back(pid);
            None
        }
    }

    /// Queued (undelivered) message count.
    pub fn queued(&self) -> usize {
        self.messages.len()
    }

    /// Waiting receiver count.
    pub fn waiting(&self) -> usize {
        self.waiters.len()
    }

    /// Waiting receivers in order (diagnostics / deadlock reports).
    pub fn waiters(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.waiters.iter().copied()
    }

    /// Total send count.
    pub fn send_count(&self) -> u64 {
        self.sends
    }

    /// Total completed receive count.
    pub fn receive_count(&self) -> u64 {
        self.receives
    }

    /// Latency statistics (send → completed receive).
    pub fn latencies(&self) -> &Tally {
        &self.latencies
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: usize) -> ProcessId {
        ProcessId(n)
    }

    fn msg(from: usize, tag: i64, at: f64) -> Msg {
        Msg {
            from: pid(from),
            tag,
            payload: 0.0,
            size_bytes: 8,
            sent_at: at,
        }
    }

    #[test]
    fn send_then_receive() {
        let mut mb = Mailbox::new("ch");
        assert!(mb.send(msg(1, 7, 0.0), 0.0).is_none());
        assert_eq!(mb.queued(), 1);
        let m = mb.receive(pid(2), 1.5).unwrap();
        assert_eq!(m.tag, 7);
        assert_eq!(mb.queued(), 0);
        // Latency 1.5 recorded.
        assert_eq!(mb.latencies().mean(), 1.5);
    }

    #[test]
    fn receive_blocks_until_send() {
        let mut mb = Mailbox::new("ch");
        assert!(mb.receive(pid(2), 0.0).is_none());
        assert_eq!(mb.waiting(), 1);
        let handoff = mb.send(msg(1, 3, 1.0), 1.0);
        assert_eq!(handoff, Some((pid(2), msg(1, 3, 1.0))));
        assert_eq!(mb.waiting(), 0);
    }

    #[test]
    fn fifo_message_order() {
        let mut mb = Mailbox::new("ch");
        mb.send(msg(1, 1, 0.0), 0.0);
        mb.send(msg(1, 2, 0.0), 0.0);
        assert_eq!(mb.receive(pid(2), 0.0).unwrap().tag, 1);
        assert_eq!(mb.receive(pid(2), 0.0).unwrap().tag, 2);
    }

    #[test]
    fn fifo_waiter_order() {
        let mut mb = Mailbox::new("ch");
        assert!(mb.receive(pid(10), 0.0).is_none());
        assert!(mb.receive(pid(11), 0.0).is_none());
        assert_eq!(mb.send(msg(1, 1, 0.0), 0.0).unwrap().0, pid(10));
        assert_eq!(mb.send(msg(1, 2, 0.0), 0.0).unwrap().0, pid(11));
    }

    #[test]
    fn counts() {
        let mut mb = Mailbox::new("ch");
        mb.send(msg(1, 1, 0.0), 0.0);
        mb.receive(pid(2), 0.0);
        assert_eq!(mb.send_count(), 1);
        assert_eq!(mb.receive_count(), 1);
    }
}
