//! Facilities: multi-server resources with queuing (CSIM `facility`).
//!
//! A facility models a service center — a CPU, a memory port, an
//! interconnect link. Processes `reserve` a server (possibly waiting in
//! the facility queue), hold it for their service time, and `release` it.

use crate::kernel::ProcessId;
use crate::stats::{Tally, TimeWeighted};
use std::collections::VecDeque;

/// Queueing discipline for a facility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Discipline {
    /// First-come first-served (default; CSIM's default too).
    #[default]
    Fcfs,
    /// Higher `priority` values are served first; FIFO within a priority.
    Priority,
}

#[derive(Debug, Clone)]
struct Waiter {
    pid: ProcessId,
    priority: i64,
    enqueued_at: f64,
    /// FIFO tie-break within a priority class.
    seq: u64,
}

/// Per-facility statistics snapshot.
#[derive(Debug, Clone)]
pub struct FacilityStats {
    /// Facility name.
    pub name: String,
    /// Number of servers.
    pub servers: usize,
    /// Completed reservations (release count).
    pub completions: u64,
    /// Time-weighted mean number of busy servers.
    pub mean_busy: f64,
    /// Utilization: mean busy / servers.
    pub utilization: f64,
    /// Time-weighted mean queue length (waiting, not in service).
    pub mean_queue_len: f64,
    /// Mean time waiting in queue before service.
    pub mean_wait: f64,
    /// Max observed queue length.
    pub max_queue_len: f64,
    /// Total busy server-seconds.
    pub busy_integral: f64,
}

/// A multi-server service facility.
#[derive(Debug)]
pub struct Facility {
    name: String,
    servers: Vec<Option<ProcessId>>,
    queue: VecDeque<Waiter>,
    discipline: Discipline,
    next_seq: u64,
    busy: TimeWeighted,
    queue_len: TimeWeighted,
    waits: Tally,
    completions: u64,
}

impl Facility {
    /// Create a facility with `servers` identical servers.
    ///
    /// # Panics
    /// Panics if `servers == 0`.
    pub fn new(name: impl Into<String>, servers: usize, discipline: Discipline) -> Self {
        assert!(servers > 0, "a facility needs at least one server");
        Self {
            name: name.into(),
            servers: vec![None; servers],
            queue: VecDeque::new(),
            discipline,
            next_seq: 0,
            busy: TimeWeighted::new(0.0, 0.0),
            queue_len: TimeWeighted::new(0.0, 0.0),
            waits: Tally::new(),
            completions: 0,
        }
    }

    /// Facility name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Number of busy servers.
    pub fn busy_count(&self) -> usize {
        self.servers.iter().filter(|s| s.is_some()).count()
    }

    /// Current queue length (waiting processes).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Attempt to reserve a server for `pid` at time `now`.
    ///
    /// Returns `true` if granted immediately; otherwise the process is
    /// queued and will be granted by a future [`Facility::release`].
    pub fn reserve(&mut self, pid: ProcessId, priority: i64, now: f64) -> bool {
        if let Some(slot) = self.servers.iter_mut().find(|s| s.is_none()) {
            *slot = Some(pid);
            self.busy.add(1.0, now);
            self.waits.record(0.0);
            true
        } else {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.queue.push_back(Waiter {
                pid,
                priority,
                enqueued_at: now,
                seq,
            });
            self.queue_len.add(1.0, now);
            false
        }
    }

    /// Release the server held by `pid` at time `now`.
    ///
    /// Returns the next process granted the freed server, if any.
    ///
    /// # Errors
    /// Returns an error if `pid` holds no server here — releasing a
    /// facility you don't hold is a model bug worth surfacing.
    pub fn release(&mut self, pid: ProcessId, now: f64) -> Result<Option<ProcessId>, String> {
        let Some(slot) = self.servers.iter_mut().find(|s| **s == Some(pid)) else {
            return Err(format!(
                "process {pid:?} does not hold a server of facility `{}`",
                self.name
            ));
        };
        *slot = None;
        self.completions += 1;
        match self.pop_next() {
            Some(w) => {
                // Server stays busy: hand it to the next waiter directly.
                *self
                    .servers
                    .iter_mut()
                    .find(|s| s.is_none())
                    .expect("freed above") = Some(w.pid);
                self.queue_len.add(-1.0, now);
                self.waits.record(now - w.enqueued_at);
                Ok(Some(w.pid))
            }
            None => {
                self.busy.add(-1.0, now);
                Ok(None)
            }
        }
    }

    fn pop_next(&mut self) -> Option<Waiter> {
        match self.discipline {
            Discipline::Fcfs => self.queue.pop_front(),
            Discipline::Priority => {
                let best = self
                    .queue
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| a.priority.cmp(&b.priority).then(b.seq.cmp(&a.seq)))
                    .map(|(i, _)| i)?;
                self.queue.remove(best)
            }
        }
    }

    /// True if `pid` currently holds a server.
    pub fn holds(&self, pid: ProcessId) -> bool {
        self.servers.contains(&Some(pid))
    }

    /// Snapshot statistics at time `now`.
    pub fn stats(&self, now: f64) -> FacilityStats {
        let mean_busy = self.busy.mean(now);
        FacilityStats {
            name: self.name.clone(),
            servers: self.servers.len(),
            completions: self.completions,
            mean_busy,
            utilization: mean_busy / self.servers.len() as f64,
            mean_queue_len: self.queue_len.mean(now),
            mean_wait: self.waits.mean(),
            max_queue_len: self.queue_len.max(),
            busy_integral: self.busy.integral(now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u32) -> ProcessId {
        ProcessId(n as usize)
    }

    #[test]
    fn immediate_grant_until_full() {
        let mut f = Facility::new("cpu", 2, Discipline::Fcfs);
        assert!(f.reserve(pid(1), 0, 0.0));
        assert!(f.reserve(pid(2), 0, 0.0));
        assert!(!f.reserve(pid(3), 0, 0.0));
        assert_eq!(f.busy_count(), 2);
        assert_eq!(f.queue_len(), 1);
    }

    #[test]
    fn release_grants_fifo() {
        let mut f = Facility::new("cpu", 1, Discipline::Fcfs);
        assert!(f.reserve(pid(1), 0, 0.0));
        assert!(!f.reserve(pid(2), 0, 1.0));
        assert!(!f.reserve(pid(3), 0, 2.0));
        let next = f.release(pid(1), 5.0).unwrap();
        assert_eq!(next, Some(pid(2)));
        let next = f.release(pid(2), 6.0).unwrap();
        assert_eq!(next, Some(pid(3)));
        let next = f.release(pid(3), 7.0).unwrap();
        assert_eq!(next, None);
        assert_eq!(f.busy_count(), 0);
    }

    #[test]
    fn priority_discipline() {
        let mut f = Facility::new("cpu", 1, Discipline::Priority);
        assert!(f.reserve(pid(1), 0, 0.0));
        assert!(!f.reserve(pid(2), 1, 0.5)); // low prio, earlier
        assert!(!f.reserve(pid(3), 5, 1.0)); // high prio, later
        assert!(!f.reserve(pid(4), 5, 2.0)); // same high prio, even later
        assert_eq!(f.release(pid(1), 3.0).unwrap(), Some(pid(3)));
        assert_eq!(f.release(pid(3), 4.0).unwrap(), Some(pid(4)));
        assert_eq!(f.release(pid(4), 5.0).unwrap(), Some(pid(2)));
    }

    #[test]
    fn release_without_hold_is_error() {
        let mut f = Facility::new("cpu", 1, Discipline::Fcfs);
        assert!(f.release(pid(9), 0.0).is_err());
    }

    #[test]
    fn utilization_accounting() {
        let mut f = Facility::new("cpu", 1, Discipline::Fcfs);
        assert!(f.reserve(pid(1), 0, 0.0));
        f.release(pid(1), 4.0).unwrap();
        // Busy 4 of 8 seconds.
        let s = f.stats(8.0);
        assert!((s.utilization - 0.5).abs() < 1e-12, "{}", s.utilization);
        assert_eq!(s.completions, 1);
        assert_eq!(s.busy_integral, 4.0);
    }

    #[test]
    fn wait_times_recorded() {
        let mut f = Facility::new("cpu", 1, Discipline::Fcfs);
        assert!(f.reserve(pid(1), 0, 0.0));
        assert!(!f.reserve(pid(2), 0, 1.0));
        f.release(pid(1), 3.0).unwrap(); // pid2 waited 2.0
        let s = f.stats(3.0);
        // waits: 0.0 (pid1 immediate) and 2.0 (pid2)
        assert!((s.mean_wait - 1.0).abs() < 1e-12);
    }

    #[test]
    fn holds_query() {
        let mut f = Facility::new("cpu", 1, Discipline::Fcfs);
        assert!(f.reserve(pid(1), 0, 0.0));
        assert!(f.holds(pid(1)));
        assert!(!f.holds(pid(2)));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _ = Facility::new("bad", 0, Discipline::Fcfs);
    }
}
