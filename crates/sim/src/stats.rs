//! Statistics collectors: tallies, time-weighted averages, histograms.
//!
//! These mirror CSIM's `table`/`qtable` reporting facilities, which the
//! Performance Estimator uses for utilizations, queue lengths and response
//! times in the trace file (TF).

/// Streaming mean/variance/min/max over observations (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct Tally {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Tally {
    /// Empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        if self.count == 1 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0.0 for fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum, or 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another tally into this one (parallel sweep aggregation).
    pub fn merge(&mut self, other: &Tally) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.mean = (n1 * self.mean + n2 * other.mean) / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Time-weighted average of a piecewise-constant signal (queue length,
/// busy servers, …).
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    value: f64,
    last_change: f64,
    integral: f64,
    start: f64,
    max: f64,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new(0.0, 0.0)
    }
}

impl TimeWeighted {
    /// Start tracking `initial` at time `start`.
    pub fn new(initial: f64, start: f64) -> Self {
        Self {
            value: initial,
            last_change: start,
            integral: 0.0,
            start,
            max: initial,
        }
    }

    /// Record that the signal changed to `value` at time `now`.
    ///
    /// # Panics
    /// Panics if `now` precedes the previous change (time must be
    /// monotone — the kernel guarantees it).
    pub fn set(&mut self, value: f64, now: f64) {
        assert!(now >= self.last_change, "TimeWeighted: time went backwards");
        self.integral += self.value * (now - self.last_change);
        self.value = value;
        self.last_change = now;
        self.max = self.max.max(value);
    }

    /// Add `delta` to the current value at time `now`.
    pub fn add(&mut self, delta: f64, now: f64) {
        let v = self.value + delta;
        self.set(v, now);
    }

    /// Current value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Maximum value observed.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Time-weighted mean over `[start, now]`.
    pub fn mean(&self, now: f64) -> f64 {
        let span = now - self.start;
        if span <= 0.0 {
            return self.value;
        }
        (self.integral + self.value * (now - self.last_change)) / span
    }

    /// Integral of the signal over `[start, now]`.
    pub fn integral(&self, now: f64) -> f64 {
        self.integral + self.value * (now - self.last_change)
    }
}

/// Fixed-bin histogram over `[lo, hi)` with under/overflow bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    tally: Tally,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "Histogram needs at least one bin");
        assert!(hi > lo, "Histogram range must be non-empty");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            tally: Tally::new(),
        }
    }

    /// Record an observation.
    pub fn record(&mut self, x: f64) {
        self.tally.record(x);
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Bin counts (not including under/overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Count below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count at/above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.tally.count()
    }

    /// Summary statistics of raw observations.
    pub fn tally(&self) -> &Tally {
        &self.tally
    }

    /// Approximate quantile from bin midpoints (`q` in `[0,1]`).
    pub fn quantile(&self, q: f64) -> f64 {
        let total: u64 = self.bins.iter().sum::<u64>() + self.underflow + self.overflow;
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return self.lo;
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.lo + (i as f64 + 0.5) * w;
            }
        }
        self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_moments() {
        let mut t = Tally::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            t.record(x);
        }
        assert_eq!(t.count(), 8);
        assert_eq!(t.mean(), 5.0);
        assert_eq!(t.variance(), 4.0);
        assert_eq!(t.std_dev(), 2.0);
        assert_eq!(t.min(), 2.0);
        assert_eq!(t.max(), 9.0);
        assert_eq!(t.sum(), 40.0);
    }

    #[test]
    fn tally_empty() {
        let t = Tally::new();
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.variance(), 0.0);
    }

    #[test]
    fn tally_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Tally::new();
        for &x in &data {
            whole.record(x);
        }
        let mut a = Tally::new();
        let mut b = Tally::new();
        for &x in &data[..37] {
            a.record(x);
        }
        for &x in &data[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new(0.0, 0.0);
        tw.set(2.0, 1.0); // 0 for [0,1)
        tw.set(4.0, 3.0); // 2 for [1,3)
                          // 4 for [3,5]
        assert_eq!(tw.mean(5.0), (0.0 + 4.0 + 8.0) / 5.0);
        assert_eq!(tw.integral(5.0), 12.0);
        assert_eq!(tw.max(), 4.0);
        assert_eq!(tw.current(), 4.0);
    }

    #[test]
    fn time_weighted_add() {
        let mut tw = TimeWeighted::new(1.0, 0.0);
        tw.add(1.0, 2.0);
        tw.add(-2.0, 4.0);
        assert_eq!(tw.current(), 0.0);
        assert_eq!(tw.mean(4.0), (1.0 * 2.0 + 2.0 * 2.0) / 4.0);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn time_weighted_monotonicity() {
        let mut tw = TimeWeighted::new(0.0, 0.0);
        tw.set(1.0, 5.0);
        tw.set(2.0, 4.0);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [-1.0, 0.0, 0.5, 5.0, 9.99, 10.0, 42.0] {
            h.record(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        let median = h.quantile(0.5);
        assert!((median - 49.5).abs() <= 1.0, "median ≈ {median}");
        assert!(h.quantile(0.0) <= h.quantile(1.0));
    }
}
