//! Named, reproducible random streams.
//!
//! CSIM gives each model entity its own random stream so structural model
//! changes don't reshuffle unrelated randomness. We reproduce that: every
//! stream is derived from `(master_seed, stream_name)` via FNV-1a, so a
//! stream's sequence depends only on its name and the master seed.

/// Self-contained xoshiro256++ generator (Blackman/Vigna), seeded via
/// splitmix64 — no external `rand` dependency, identical output on every
/// platform.
#[derive(Debug, Clone)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A reproducible random stream with the distributions the estimator and
/// workload generators need.
#[derive(Debug, Clone)]
pub struct RandomStream {
    rng: Xoshiro256,
    /// Cached second normal variate from Box-Muller.
    spare_normal: Option<f64>,
}

impl RandomStream {
    /// Derive a stream from the master seed and a stable name.
    pub fn derive(master_seed: u64, name: &str) -> Self {
        // FNV-1a over the name, folded with the master seed.
        let mut h: u64 = 0xcbf29ce484222325 ^ master_seed.rotate_left(17);
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        // Avoid the all-zero seed edge case.
        let seed = if h == 0 { 0x9e3779b97f4a7c15 } else { h };
        Self {
            rng: Xoshiro256::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `hi <= lo`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(hi > lo, "uniform requires hi > lo");
        let r = lo + self.rng.unit_f64() * (hi - lo);
        // On tight ranges the scaled product can round up to exactly
        // `hi`; keep the documented half-open contract.
        if r < hi {
            r
        } else {
            hi.next_down().max(lo)
        }
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn uniform_int(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi >= lo, "uniform_int requires hi >= lo");
        // Lemire multiply-shift over the (inclusive) span.
        let span = (hi - lo).wrapping_add(1);
        if span == 0 {
            return self.rng.next_u64(); // full u64 range
        }
        lo + ((self.rng.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Exponential with the given mean (inverse-CDF method).
    ///
    /// # Panics
    /// Panics if `mean <= 0`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential requires a positive mean");
        // `unit_f64()` is in [0, 1); the max() guards the reachable 0.0
        // endpoint so ln(u) stays strictly negative and the sample
        // strictly positive.
        let u: f64 = self.rng.unit_f64().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Normal via Box-Muller (no `rand_distr` dependency).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "normal requires std_dev >= 0");
        if let Some(z) = self.spare_normal.take() {
            return mean + std_dev * z;
        }
        // Guard the reachable 0.0 endpoint of [0, 1) so ln(u1) is finite.
        let u1: f64 = self.rng.unit_f64().max(f64::MIN_POSITIVE);
        let u2: f64 = self.rng.unit_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        mean + std_dev * r * theta.cos()
    }

    /// Truncated normal: resampled into `[lo, hi]` (at most 64 attempts,
    /// then clamped — keeps worst-case cost bounded and deterministic).
    pub fn normal_clamped(&mut self, mean: f64, std_dev: f64, lo: f64, hi: f64) -> f64 {
        for _ in 0..64 {
            let x = self.normal(mean, std_dev);
            if x >= lo && x <= hi {
                return x;
            }
        }
        mean.clamp(lo, hi)
    }

    /// Bernoulli with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.unit_f64() < p.clamp(0.0, 1.0)
    }

    /// Raw u64 (for shuffles and derived decisions).
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        let mut a = RandomStream::derive(42, "arrivals");
        let mut b = RandomStream::derive(42, "arrivals");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_are_independent_by_name() {
        let mut a = RandomStream::derive(42, "arrivals");
        let mut b = RandomStream::derive(42, "service");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn seeds_change_streams() {
        let mut a = RandomStream::derive(1, "s");
        let mut b = RandomStream::derive(2, "s");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn exponential_mean_converges() {
        let mut s = RandomStream::derive(7, "exp");
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| s.exponential(2.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "sample mean {mean}");
    }

    #[test]
    fn exponential_is_positive() {
        let mut s = RandomStream::derive(7, "exp2");
        assert!((0..10_000).all(|_| s.exponential(1.0) > 0.0));
    }

    #[test]
    fn normal_moments_converge() {
        let mut s = RandomStream::derive(11, "norm");
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| s.normal(10.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn uniform_bounds() {
        let mut s = RandomStream::derive(3, "uni");
        for _ in 0..10_000 {
            let x = s.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
            let i = s.uniform_int(1, 6);
            assert!((1..=6).contains(&i));
        }
    }

    #[test]
    fn normal_clamped_in_bounds() {
        let mut s = RandomStream::derive(5, "clamp");
        for _ in 0..1000 {
            let x = s.normal_clamped(0.0, 10.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn chance_probability() {
        let mut s = RandomStream::derive(9, "coin");
        let hits = (0..100_000).filter(|_| s.chance(0.25)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.25).abs() < 0.01, "p ≈ {p}");
    }
}
