//! The simulation process that replays primitive ops on the DES engine.

use crate::flatten::PrimOp;
use prophet_machine::CommModel;
use prophet_sim::{Action, FacilityId, MailboxId, Msg, ProcCtx, Process, ProcessId, Resumed};
use prophet_trace::{EventKind, TraceEvent, TraceFile};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Shared, single-threaded trace sink (the kernel is single-threaded).
pub type TraceSink = Rc<RefCell<TraceFile>>;

/// Tag base for thread-team join notifications (see flatten).
use crate::flatten::JOIN_BASE;

/// State of an in-flight blocking operation.
enum Pending {
    None,
    /// Waiting for a message matching `(src, tag)`.
    Recv {
        src: usize,
        tag: i64,
        element: String,
    },
    /// Received a message whose Hockney arrival is in the future; holding
    /// until then. The element name is recorded as `MsgRecv` on wake.
    ArrivalHold(Option<String>),
    /// Waiting for `remaining` join notifications with `tag`.
    Join {
        remaining: usize,
        tag: i64,
        element: String,
    },
}

/// A replaying process: one per MPI rank, and one per team thread.
pub struct OpProcess {
    /// MPI rank.
    pub pid: usize,
    /// Thread id (0 = the rank's master flow).
    pub tid: usize,
    /// Shared (possibly cache-resident) op list this flow replays; the
    /// interpreter never mutates or consumes it, so one elaboration can
    /// serve any number of evaluations.
    ops: Arc<[PrimOp]>,
    ip: usize,
    cpu: FacilityId,
    /// Mailbox of every rank (index = rank).
    mailboxes: Rc<Vec<MailboxId>>,
    /// This flow's receive mailbox: the rank mailbox for masters, a
    /// dedicated one for join coordination inside thread parents.
    my_mailbox: MailboxId,
    comm: CommModel,
    trace: Option<TraceSink>,
    /// One 1-server facility per `<<critical+>>` lock of this rank.
    locks: Rc<Vec<FacilityId>>,
    /// Where to notify on completion (thread flows only).
    notify: Option<(MailboxId, i64)>,
    pending: Pending,
    /// Unexpected-message queue (MPI-style out-of-order arrival stash).
    stash: Vec<Msg>,
    /// Monotone region counter for join tags.
    region_seq: i64,
    send_overhead: f64,
    /// Fatal mismatch message (reported via panic-free path: the kernel's
    /// deadlock/termination reporting).
    pub error: Rc<RefCell<Option<String>>>,
}

impl OpProcess {
    /// Build a master process for `pid`.
    #[allow(clippy::too_many_arguments)]
    pub fn master(
        pid: usize,
        ops: Arc<[PrimOp]>,
        cpu: FacilityId,
        mailboxes: Rc<Vec<MailboxId>>,
        comm: CommModel,
        trace: Option<TraceSink>,
        locks: Rc<Vec<FacilityId>>,
        error: Rc<RefCell<Option<String>>>,
    ) -> Self {
        let my_mailbox = mailboxes[pid];
        Self {
            pid,
            tid: 0,
            ops,
            ip: 0,
            cpu,
            mailboxes,
            my_mailbox,
            comm,
            trace,
            locks,
            notify: None,
            pending: Pending::None,
            stash: Vec::new(),
            region_seq: 0,
            send_overhead: comm.params.send_overhead,
            error,
        }
    }

    fn child(&self, tid: usize, ops: Vec<PrimOp>, notify: (MailboxId, i64)) -> Self {
        Self {
            pid: self.pid,
            tid,
            ops: ops.into(),
            ip: 0,
            cpu: self.cpu,
            mailboxes: Rc::clone(&self.mailboxes),
            my_mailbox: self.my_mailbox, // unused by threads (no recv)
            comm: self.comm,
            trace: self.trace.clone(),
            locks: Rc::clone(&self.locks),
            notify: Some(notify),
            pending: Pending::None,
            stash: Vec::new(),
            region_seq: 0,
            send_overhead: self.send_overhead,
            error: Rc::clone(&self.error),
        }
    }

    fn record(&self, time: f64, element: &str, kind: EventKind) {
        if let Some(trace) = &self.trace {
            trace.borrow_mut().push(TraceEvent {
                time,
                pid: self.pid,
                tid: self.tid,
                element: element.to_string(),
                kind,
            });
        }
    }

    fn fail(&mut self, ctx: &mut ProcCtx<'_>, message: String) -> Action {
        let mut slot = self.error.borrow_mut();
        if slot.is_none() {
            *slot = Some(format!(
                "rank {} tid {} at t={:.9}: {message}",
                self.pid,
                self.tid,
                ctx.now()
            ));
        }
        // Terminating here lets the run finish; the estimator surfaces the
        // recorded error.
        Action::Terminate
    }

    /// Does `msg` satisfy the pending receive?
    fn matches(msg: &Msg, src: usize, tag: i64) -> bool {
        msg.from == ProcessId(usize::MAX) // never true; placeholder
            || (msg.tag == tag && msg.payload as usize == src)
    }

    /// Handle a delivered message against the pending receive. Returns the
    /// next action (continue execution, keep waiting, or hold for the
    /// Hockney arrival time).
    fn on_message(&mut self, ctx: &mut ProcCtx<'_>, msg: Msg) -> Action {
        let Pending::Recv { src, tag, element } =
            std::mem::replace(&mut self.pending, Pending::None)
        else {
            return self.fail(
                ctx,
                format!("unexpected message (tag {}) delivered", msg.tag),
            );
        };
        if !Self::matches(&msg, src, tag) {
            // Out-of-order arrival: stash it and keep waiting.
            self.stash.push(msg);
            self.pending = Pending::Recv { src, tag, element };
            return Action::Receive(self.my_mailbox);
        }
        self.complete_recv(ctx, msg, src, tag, element)
    }

    fn complete_recv(
        &mut self,
        ctx: &mut ProcCtx<'_>,
        msg: Msg,
        src: usize,
        _tag: i64,
        element: String,
    ) -> Action {
        // Data messages experience Hockney transfer time; control
        // messages (tag < 0, zero bytes) are instantaneous.
        let arrival = if msg.size_bytes > 0 {
            msg.sent_at + self.comm.ptp_time(src, self.pid, msg.size_bytes)
        } else {
            msg.sent_at
        };
        let now = ctx.now();
        let recv_marker = (msg.size_bytes > 0).then_some(element);
        if arrival > now {
            self.pending = Pending::ArrivalHold(recv_marker);
            return Action::Hold(arrival - now);
        }
        if let Some(el) = recv_marker {
            self.record(now, &el, EventKind::MsgRecv);
        }
        self.run(ctx)
    }

    /// Try to satisfy the pending receive from the stash.
    fn try_stash(&mut self, ctx: &mut ProcCtx<'_>) -> Option<Action> {
        let Pending::Recv {
            src,
            tag,
            ref element,
        } = self.pending
        else {
            return None;
        };
        let element = element.clone();
        if let Some(pos) = self.stash.iter().position(|m| Self::matches(m, src, tag)) {
            let msg = self.stash.remove(pos);
            self.pending = Pending::None;
            return Some(self.complete_recv(ctx, msg, src, tag, element));
        }
        None
    }

    /// Main dispatch: execute ops until one blocks.
    fn run(&mut self, ctx: &mut ProcCtx<'_>) -> Action {
        loop {
            if self.error.borrow().is_some() {
                return Action::Terminate;
            }
            let Some(op) = self.ops.get(self.ip).cloned() else {
                // Flow complete.
                if let Some((mbox, tag)) = self.notify {
                    ctx.send(
                        mbox,
                        Msg {
                            from: ctx.pid(),
                            tag,
                            payload: self.pid as f64,
                            size_bytes: 0,
                            sent_at: ctx.now(),
                        },
                    );
                }
                return Action::Terminate;
            };
            self.ip += 1;
            match op {
                PrimOp::Enter(name) => {
                    self.record(ctx.now(), &name, EventKind::Enter);
                }
                PrimOp::Exit(name) => {
                    self.record(ctx.now(), &name, EventKind::Exit);
                }
                PrimOp::Compute { seconds, .. } => {
                    if seconds > 0.0 {
                        return Action::Use(self.cpu, seconds);
                    }
                }
                PrimOp::Wait { seconds, .. } => {
                    if seconds > 0.0 {
                        return Action::Hold(seconds);
                    }
                }
                PrimOp::SendTo {
                    element,
                    dest,
                    bytes,
                    tag,
                } => {
                    if bytes > 0 {
                        self.record(ctx.now(), &element, EventKind::MsgSend);
                    }
                    let mbox = self.mailboxes[dest];
                    ctx.send(
                        mbox,
                        Msg {
                            from: ctx.pid(),
                            tag,
                            // The sender's MPI rank rides in the payload so
                            // receivers match on ranks, not kernel pids.
                            payload: self.pid as f64,
                            size_bytes: bytes,
                            sent_at: ctx.now(),
                        },
                    );
                    if bytes > 0 && self.send_overhead > 0.0 {
                        return Action::Hold(self.send_overhead);
                    }
                }
                PrimOp::RecvFrom {
                    element, src, tag, ..
                } => {
                    self.pending = Pending::Recv { src, tag, element };
                    if let Some(action) = self.try_stash(ctx) {
                        return action;
                    }
                    return Action::Receive(self.my_mailbox);
                }
                PrimOp::Threads { element, arms } => {
                    let tag = JOIN_BASE - self.region_seq;
                    self.region_seq += 1;
                    let n = arms.len();
                    for (t, arm_ops) in arms.into_iter().enumerate() {
                        let child = self.child(t, arm_ops, (self.my_mailbox, tag));
                        ctx.spawn(
                            &format!("p{}.{}.t{}", self.pid, element, t),
                            Box::new(child),
                        );
                    }
                    if n > 0 {
                        self.pending = Pending::Join {
                            remaining: n,
                            tag,
                            element,
                        };
                        return Action::Receive(self.my_mailbox);
                    }
                }
                PrimOp::Lock(id) => {
                    return Action::Reserve(self.locks[id]);
                }
                PrimOp::Unlock(id) => {
                    ctx.release(self.locks[id]);
                }
            }
        }
    }
}

impl Process for OpProcess {
    fn resume(&mut self, ctx: &mut ProcCtx<'_>, why: Resumed) -> Action {
        match why {
            Resumed::Granted(_) => self.run(ctx),
            Resumed::Start | Resumed::HoldDone | Resumed::UseDone(_) => {
                match std::mem::replace(&mut self.pending, Pending::None) {
                    Pending::ArrivalHold(marker) => {
                        if let Some(el) = marker {
                            self.record(ctx.now(), &el, EventKind::MsgRecv);
                        }
                        self.run(ctx)
                    }
                    Pending::None => self.run(ctx),
                    other => {
                        self.pending = other;
                        self.fail(ctx, "woke from hold while a receive was pending".into())
                    }
                }
            }
            Resumed::MsgReceived(msg) => {
                match std::mem::replace(&mut self.pending, Pending::None) {
                    Pending::Join {
                        remaining,
                        tag,
                        element,
                    } => {
                        if msg.tag != tag {
                            // A data message arrived during the join: stash.
                            self.stash.push(msg);
                            self.pending = Pending::Join {
                                remaining,
                                tag,
                                element,
                            };
                            return Action::Receive(self.my_mailbox);
                        }
                        if remaining > 1 {
                            self.pending = Pending::Join {
                                remaining: remaining - 1,
                                tag,
                                element,
                            };
                            return Action::Receive(self.my_mailbox);
                        }
                        self.run(ctx)
                    }
                    Pending::Recv { src, tag, element } => {
                        self.pending = Pending::Recv { src, tag, element };
                        self.on_message(ctx, msg)
                    }
                    _ => self.fail(ctx, format!("unexpected message (tag {})", msg.tag)),
                }
            }
            other => self.fail(ctx, format!("unexpected wake-up {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    // The interpreter is exercised end-to-end through the estimator tests;
    // unit tests here cover the message-matching helper.
    use super::*;

    #[test]
    fn matching_is_by_rank_payload_and_tag() {
        let msg = Msg {
            from: ProcessId(99), // kernel pid is irrelevant
            tag: 7,
            payload: 3.0, // sender rank
            size_bytes: 16,
            sent_at: 0.0,
        };
        assert!(OpProcess::matches(&msg, 3, 7));
        assert!(!OpProcess::matches(&msg, 2, 7));
        assert!(!OpProcess::matches(&msg, 3, 8));
    }
}
