//! Memoized scenario elaboration: flatten once per SP point, serve many
//! scenarios.
//!
//! PR 2's `bench_analytic` showed that flattening the per-rank op lists
//! dominates *both* evaluation backends during SP sweeps: the
//! compile-once `Session` stopped paying check + transform per scenario,
//! but still paid an O(scenarios) elaboration tax. This module removes
//! it.
//!
//! Elaboration is a pure function of `(Program, SystemParams,
//! CommParams, FlattenLimits)` — it never reads the seed, calendar,
//! trace flag, time cutoff, or backend — so a sweep over S SP points ×
//! R seeds × both backends only has S distinct elaborations, not S×R×2.
//! [`ElaborationCache`] memoizes them:
//!
//! * **Keying.** `ElabKey` is a content key over the machine model and
//!   limits: the SP quadruple, the five communication parameters (by
//!   f64 bit pattern — collective expansion bakes `machine.comm` costs
//!   into `Wait` ops), and both flatten limits (two scenarios with
//!   different limits may elaborate differently). The *program* is NOT
//!   part of the key: one cache serves exactly one compiled program, the
//!   invariant `Session` maintains by owning its cache privately.
//! * **Storage.** Each entry holds one [`RankOps`]: an
//!   `Arc<[Arc<[PrimOp]>]>` — one shared op list per rank. Both backends
//!   borrow these lists; nothing is cloned per evaluation.
//! * **Concurrency.** Sharded, insert-only, lock-free index: each shard
//!   is an atomic singly-linked list pushed with compare-exchange
//!   (losers rescan, so a key is interned exactly once), and each
//!   entry's value is a [`OnceLock`] — the first worker to need an SP
//!   point elaborates it while any concurrent worker for the *same*
//!   point waits on the `OnceLock` instead of flattening again. Workers
//!   for different points never contend.
//! * **Invalidation.** None, by construction: entries are immutable and
//!   the inputs are content-hashed, so a cache can never serve an op
//!   list that doesn't match its key. A *different* program requires a
//!   different cache (a new `Session`).
//! * **Memory bounds.** The cache holds at most `capacity` entries
//!   (default [`DEFAULT_CAPACITY`]); once full, new keys bypass the
//!   cache — they flatten uncached and are dropped after use, counted
//!   in [`ElabStats::bypasses`]. Each entry's size is the flattened
//!   model itself (bounded per rank by [`FlattenLimits::max_ops`]), so
//!   capacity bounds entry *count*; callers sweeping enormous grids of
//!   enormous models can lower it or disable caching entirely
//!   (`SweepConfig::no_elab_cache` / `--no-elab-cache`).
//!
//! Failed elaborations are cached too: a key whose flatten fails serves
//! the same [`FlattenError`] to every scenario that hits it, without
//! re-walking the program.

use crate::batch::BatchProgram;
use crate::flatten::{flatten_for_process, FlattenError, FlattenLimits, PrimOp};
use crate::program::Program;
use prophet_machine::{CommParams, MachineModel, SystemParams};
use std::fmt;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// The elaboration of one scenario: one shared op list per MPI rank.
pub type RankOps = Arc<[Arc<[PrimOp]>]>;

/// Elaborate every rank of `program` on `machine`, uncached.
///
/// The scenario-independent elaboration pass both backends consume;
/// [`ElaborationCache::get_or_flatten`] memoizes it per SP point.
pub fn flatten_all(
    program: &Program,
    machine: &MachineModel,
    limits: FlattenLimits,
) -> Result<RankOps, FlattenError> {
    let mut ranks: Vec<Arc<[PrimOp]>> = Vec::with_capacity(machine.sp.processes);
    for pid in 0..machine.sp.processes {
        ranks.push(flatten_for_process(program, machine, pid, limits)?.into());
    }
    Ok(ranks.into())
}

/// Content key of one elaboration: everything [`flatten_all`] reads
/// besides the program itself.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ElabKey {
    nodes: usize,
    cpus_per_node: usize,
    processes: usize,
    threads_per_process: usize,
    /// The five [`prophet_machine::CommParams`] fields by bit pattern.
    comm_bits: [u64; 5],
    limits: FlattenLimits,
}

impl ElabKey {
    fn new(machine: &MachineModel, limits: FlattenLimits) -> Self {
        Self::from_parts(machine.sp, machine.comm.params, limits)
    }

    /// Key from raw scenario parts (what [`ElaborationCache::seed`] and
    /// the persisted-artifact store work with — no `MachineModel`
    /// construction, hence no SP validation, on the load path).
    fn from_parts(sp: SystemParams, c: CommParams, limits: FlattenLimits) -> Self {
        Self {
            nodes: sp.nodes,
            cpus_per_node: sp.cpus_per_node,
            processes: sp.processes,
            threads_per_process: sp.threads_per_process,
            comm_bits: [
                c.intra_latency.to_bits(),
                c.intra_bandwidth.to_bits(),
                c.inter_latency.to_bits(),
                c.inter_bandwidth.to_bits(),
                c.send_overhead.to_bits(),
            ],
            limits,
        }
    }

    /// The system parameters this key was built from.
    fn sp(&self) -> SystemParams {
        SystemParams {
            nodes: self.nodes,
            cpus_per_node: self.cpus_per_node,
            processes: self.processes,
            threads_per_process: self.threads_per_process,
        }
    }

    /// The communication parameters this key was built from
    /// (bit-exact: the key stores the raw f64 bit patterns).
    fn comm(&self) -> CommParams {
        CommParams {
            intra_latency: f64::from_bits(self.comm_bits[0]),
            intra_bandwidth: f64::from_bits(self.comm_bits[1]),
            inter_latency: f64::from_bits(self.comm_bits[2]),
            inter_bandwidth: f64::from_bits(self.comm_bits[3]),
            send_overhead: f64::from_bits(self.comm_bits[4]),
        }
    }

    /// FNV-1a content hash (stable; shard + bucket selector).
    fn hash(&self) -> u64 {
        let mut h = crate::flatten::Fnv::new();
        h.word(self.nodes as u64);
        h.word(self.cpus_per_node as u64);
        h.word(self.processes as u64);
        h.word(self.threads_per_process as u64);
        for bits in self.comm_bits {
            h.word(bits);
        }
        h.word(self.limits.max_ops as u64);
        h.word(self.limits.max_loop_iterations);
        h.finish()
    }
}

/// One interned key: the value slot fills exactly once.
struct Node {
    hash: u64,
    key: ElabKey,
    slot: OnceLock<Result<RankOps, FlattenError>>,
    /// The entry's elaboration compiled for batch analytic evaluation,
    /// built on first [`ElaborationCache::get_or_flatten_batched`] —
    /// `None` when preparation failed (callers use the per-point
    /// oracle). Simulation-only sweeps never pay for it.
    batch: OnceLock<Option<Arc<BatchProgram>>>,
    /// Immutable after publication (set before the CAS that links it).
    next: *mut Node,
}

struct Shard {
    head: AtomicPtr<Node>,
}

/// Shard count: enough to keep concurrent sweep workers on distinct SP
/// points from touching the same list head.
const SHARDS: usize = 16;

/// Default entry capacity of [`ElaborationCache::new`].
pub const DEFAULT_CAPACITY: usize = 1024;

/// Counter snapshot of an [`ElaborationCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ElabStats {
    /// Lookups served from an already-elaborated entry.
    pub hits: u64,
    /// Lookups that elaborated and stored a new entry (== the number of
    /// elaborations the cache performed, one per distinct key).
    pub misses: u64,
    /// Lookups that flattened uncached because the cache was at
    /// capacity.
    pub bypasses: u64,
}

impl ElabStats {
    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.bypasses
    }

    /// Elaborations performed (cache-filling misses + capacity
    /// bypasses). In a cached sweep this is the flatten count.
    pub fn flattens(&self) -> u64 {
        self.misses + self.bypasses
    }
}

/// One successful elaboration, exported by [`ElaborationCache::snapshot`]
/// and re-imported by [`ElaborationCache::seed`] — the unit the
/// persistent artifact store (`prophet_core::store`) serializes so a
/// warm-started session re-serves its op lists without re-flattening.
#[derive(Debug, Clone)]
pub struct ElabEntry {
    /// System parameters of the elaborated scenario.
    pub sp: SystemParams,
    /// Communication parameters (bit-exact through snapshot→seed).
    pub comm: CommParams,
    /// The flatten limits the elaboration ran under.
    pub limits: FlattenLimits,
    /// The per-rank op lists.
    pub ops: RankOps,
}

impl ElabEntry {
    /// Total primitive-op count across all ranks (top level only; a
    /// size proxy the store uses for its "persist where cheap" bound).
    pub fn op_count(&self) -> usize {
        self.ops.iter().map(|rank| rank.len()).sum()
    }
}

/// SP-keyed memoization of [`flatten_all`] for one compiled program.
///
/// See the [module docs](self) for keying, invalidation, concurrency and
/// memory-bound details. Shareable by reference across sweep worker
/// threads; `prophet_core::Session` owns one per compiled model.
pub struct ElaborationCache {
    shards: [Shard; SHARDS],
    entries: AtomicUsize,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    bypasses: AtomicU64,
}

// The cache is auto-`Send`/`Sync` (its fields are atomics and plain
// data), but `AtomicPtr` erases the shared `Node` payload from the
// compiler's view: soundness additionally requires that everything a
// published `&Node` exposes is itself thread-safe. Assert that here so
// a future non-`Sync` ingredient (an `Rc`/`Cell` inside `PrimOp`,
// `FlattenError`, …) becomes a compile error instead of a data race.
// The remaining manual invariants are structural: nodes are only ever
// appended (`next` is immutable after the publishing CAS), values fill
// through a `OnceLock`, and no node is freed before the cache drops.
const _: () = {
    const fn thread_safe<T: Send + Sync>() {}
    thread_safe::<ElabKey>();
    thread_safe::<RankOps>();
    thread_safe::<FlattenError>();
    thread_safe::<OnceLock<Result<RankOps, FlattenError>>>();
    thread_safe::<OnceLock<Option<Arc<BatchProgram>>>>();
    thread_safe::<ElaborationCache>();
};

impl Default for ElaborationCache {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for ElaborationCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ElaborationCache")
            .field("entries", &self.len())
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

impl ElaborationCache {
    /// An empty cache with the [`DEFAULT_CAPACITY`] entry bound.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// An empty cache bounded to `capacity` entries; keys beyond the
    /// bound flatten uncached ([`ElabStats::bypasses`]).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            shards: std::array::from_fn(|_| Shard {
                head: AtomicPtr::new(std::ptr::null_mut()),
            }),
            entries: AtomicUsize::new(0),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
        }
    }

    /// The elaboration for `(machine, limits)`, flattening `program` at
    /// most once per distinct key — concurrent callers for the same key
    /// wait for the first elaboration instead of repeating it.
    ///
    /// The caller must pass the same `program` on every call (the
    /// program is deliberately not part of the key; see module docs).
    ///
    /// # Errors
    /// The (cached) [`FlattenError`] when elaboration fails.
    pub fn get_or_flatten(
        &self,
        program: &Program,
        machine: &MachineModel,
        limits: FlattenLimits,
    ) -> Result<RankOps, FlattenError> {
        let key = ElabKey::new(machine, limits);
        let hash = key.hash();
        let Some(node) = self.intern(key, hash) else {
            self.bypasses.fetch_add(1, Ordering::Relaxed);
            return flatten_all(program, machine, limits);
        };
        let mut filled = false;
        let result = node.slot.get_or_init(|| {
            filled = true;
            flatten_all(program, machine, limits)
        });
        if filled {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        result.clone()
    }

    /// [`ElaborationCache::get_or_flatten`], additionally serving the
    /// entry's [`BatchProgram`] — the elaboration compiled for batch
    /// analytic evaluation, built at most once per entry and shared
    /// across sweep workers like the op lists themselves.
    ///
    /// Returns `None` for the batch half when preparation failed (the
    /// caller must evaluate per-point — behavior is identical, see the
    /// [`crate::batch`] module docs) or when the lookup bypassed the
    /// cache at capacity (a throwaway batch compilation would cost more
    /// than it saves). Counts hits/misses/bypasses exactly like
    /// [`ElaborationCache::get_or_flatten`].
    ///
    /// # Errors
    /// The (cached) [`FlattenError`] when elaboration fails.
    pub fn get_or_flatten_batched(
        &self,
        program: &Program,
        machine: &MachineModel,
        limits: FlattenLimits,
    ) -> Result<(RankOps, Option<Arc<BatchProgram>>), FlattenError> {
        let key = ElabKey::new(machine, limits);
        let hash = key.hash();
        let Some(node) = self.intern(key, hash) else {
            self.bypasses.fetch_add(1, Ordering::Relaxed);
            return Ok((flatten_all(program, machine, limits)?, None));
        };
        let mut filled = false;
        let result = node.slot.get_or_init(|| {
            filled = true;
            flatten_all(program, machine, limits)
        });
        if filled {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        let ops = result.clone()?;
        let batch = node
            .batch
            .get_or_init(|| BatchProgram::prepare(&ops, machine).ok().map(Arc::new))
            .clone();
        Ok((ops, batch))
    }

    /// Pre-fill the entry for `(sp, comm, limits)` with an elaboration
    /// computed elsewhere (a prior process run, via the persistent
    /// artifact store). Seeding is not a lookup: it touches no hit/miss
    /// counter, so a seeded entry's first `get_or_flatten` is a plain
    /// hit. Returns `false` when the cache is at capacity (the seed is
    /// dropped) — an already-present entry is left untouched and counts
    /// as seeded.
    ///
    /// The caller must only seed op lists that were flattened from the
    /// same program this cache serves; the store guarantees that by
    /// keying artifacts on the model content digest.
    pub fn seed(
        &self,
        sp: SystemParams,
        comm: CommParams,
        limits: FlattenLimits,
        ops: RankOps,
    ) -> bool {
        let key = ElabKey::from_parts(sp, comm, limits);
        let hash = key.hash();
        let Some(node) = self.intern(key, hash) else {
            return false;
        };
        // First writer wins; racing a concurrent flatten (or an earlier
        // seed) of the same key is benign — both values are correct.
        let _ = node.slot.set(Ok(ops));
        true
    }

    /// Every successfully elaborated entry currently interned, in
    /// deterministic `(SP, comm, limits)` order. Failed elaborations
    /// are not exported (a seeded cache should re-diagnose them
    /// freshly), and unfilled entries (a concurrent flatten still in
    /// flight) are skipped rather than waited for.
    pub fn snapshot(&self) -> Vec<ElabEntry> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let mut cur = shard.head.load(Ordering::Acquire);
            while !cur.is_null() {
                // SAFETY: published nodes live until the cache drops.
                let node = unsafe { &*cur };
                if let Some(Ok(ops)) = node.slot.get() {
                    out.push(ElabEntry {
                        sp: node.key.sp(),
                        comm: node.key.comm(),
                        limits: node.key.limits,
                        ops: ops.clone(),
                    });
                }
                cur = node.next;
            }
        }
        out.sort_by_key(|e| {
            (
                [
                    e.sp.nodes as u64,
                    e.sp.cpus_per_node as u64,
                    e.sp.processes as u64,
                    e.sp.threads_per_process as u64,
                ],
                [
                    e.comm.intra_latency.to_bits(),
                    e.comm.intra_bandwidth.to_bits(),
                    e.comm.inter_latency.to_bits(),
                    e.comm.inter_bandwidth.to_bits(),
                    e.comm.send_overhead.to_bits(),
                ],
                e.limits.max_ops,
                e.limits.max_loop_iterations,
            )
        });
        out
    }

    /// Counter snapshot (hits / misses / bypasses so far).
    pub fn stats(&self) -> ElabStats {
        ElabStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
        }
    }

    /// Interned entries so far.
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// Whether no entry has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The entry bound this cache was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Atomically claim one of the `capacity` entry slots; the claim is
    /// either consumed by a successful insert or returned with
    /// `fetch_sub`. Reserving *before* publishing keeps the bound hard
    /// under concurrency (a plain load-then-insert would let two
    /// threads racing past the same count both publish).
    fn reserve_entry(&self) -> bool {
        self.entries
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < self.capacity).then_some(n + 1)
            })
            .is_ok()
    }

    /// Find or insert the node for `key`. Returns `None` when the cache
    /// is at capacity and the key is not already interned.
    fn intern(&self, key: ElabKey, hash: u64) -> Option<&Node> {
        let shard = &self.shards[hash as usize % SHARDS];
        let mut new_node: *mut Node = std::ptr::null_mut();
        let mut reserved = false;
        let found = 'search: loop {
            let head = shard.head.load(Ordering::Acquire);
            let mut cur = head;
            while !cur.is_null() {
                // SAFETY: published nodes live until the cache drops.
                let n = unsafe { &*cur };
                if n.hash == hash && n.key == key {
                    break 'search Some(n);
                }
                cur = n.next;
            }
            // Hold the slot reservation across CAS retries; it is
            // consumed by a successful insert and released below
            // otherwise.
            if !reserved {
                if !self.reserve_entry() {
                    break 'search None;
                }
                reserved = true;
            }
            if new_node.is_null() {
                new_node = Box::into_raw(Box::new(Node {
                    hash,
                    key,
                    slot: OnceLock::new(),
                    batch: OnceLock::new(),
                    next: head,
                }));
            } else {
                // SAFETY: not yet published; we still own it exclusively.
                unsafe { (*new_node).next = head };
            }
            if shard
                .head
                .compare_exchange(head, new_node, Ordering::Release, Ordering::Acquire)
                .is_ok()
            {
                // SAFETY: just published; lives until the cache drops.
                return Some(unsafe { &*new_node });
            }
            // CAS lost: another key (or this one) was pushed — rescan.
        };
        // Not inserted: lost to an identical key, or at capacity.
        if !new_node.is_null() {
            // SAFETY: new_node was never published.
            drop(unsafe { Box::from_raw(new_node) });
        }
        if reserved {
            self.entries.fetch_sub(1, Ordering::Relaxed);
        }
        found
    }
}

impl Drop for ElaborationCache {
    fn drop(&mut self) {
        for shard in &mut self.shards {
            let mut cur = *shard.head.get_mut();
            while !cur.is_null() {
                // SAFETY: exclusive access in Drop; each node was leaked
                // from exactly one Box at publication.
                let node = unsafe { Box::from_raw(cur) };
                cur = node.next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Step;
    use prophet_expr::parse_expression;
    use prophet_machine::{CommParams, SystemParams};

    fn machine(p: usize) -> MachineModel {
        MachineModel::new(SystemParams::flat_mpi(p, 1), CommParams::default()).unwrap()
    }

    fn program() -> Program {
        let mut p = Program::new("t");
        p.body = Step::Exec {
            name: "A".into(),
            cost: Some(parse_expression("1 + pid").unwrap()),
            code: vec![],
        };
        p
    }

    #[test]
    fn cached_matches_uncached() {
        let cache = ElaborationCache::new();
        let p = program();
        for procs in [1, 2, 4] {
            let m = machine(procs);
            let cached = cache
                .get_or_flatten(&p, &m, FlattenLimits::default())
                .unwrap();
            let fresh = flatten_all(&p, &m, FlattenLimits::default()).unwrap();
            assert_eq!(cached.len(), fresh.len());
            for (c, f) in cached.iter().zip(fresh.iter()) {
                assert_eq!(&c[..], &f[..]);
            }
        }
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn repeated_lookups_hit_and_share() {
        let cache = ElaborationCache::new();
        let p = program();
        let m = machine(2);
        let a = cache
            .get_or_flatten(&p, &m, FlattenLimits::default())
            .unwrap();
        let b = cache
            .get_or_flatten(&p, &m, FlattenLimits::default())
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hits must share the stored Arc");
        assert_eq!(
            cache.stats(),
            ElabStats {
                hits: 1,
                misses: 1,
                bypasses: 0
            }
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = ElaborationCache::new();
        let p = program();
        // Same SP, different comm parameters: distinct entries (the
        // collective expansion bakes comm costs into the ops).
        let sp = SystemParams::flat_mpi(2, 1);
        let m1 = MachineModel::new(sp, CommParams::default()).unwrap();
        let m2 = MachineModel::new(sp, CommParams::fast_interconnect()).unwrap();
        cache
            .get_or_flatten(&p, &m1, FlattenLimits::default())
            .unwrap();
        cache
            .get_or_flatten(&p, &m2, FlattenLimits::default())
            .unwrap();
        // Same machine, different limits: distinct entry again.
        let tight = FlattenLimits {
            max_ops: 10,
            ..Default::default()
        };
        cache.get_or_flatten(&p, &m1, tight).unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn capacity_bypasses_instead_of_evicting() {
        let cache = ElaborationCache::with_capacity(1);
        let p = program();
        cache
            .get_or_flatten(&p, &machine(1), FlattenLimits::default())
            .unwrap();
        // New key: over capacity → uncached flatten, no new entry.
        cache
            .get_or_flatten(&p, &machine(2), FlattenLimits::default())
            .unwrap();
        // Existing key still hits.
        cache
            .get_or_flatten(&p, &machine(1), FlattenLimits::default())
            .unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.stats(),
            ElabStats {
                hits: 1,
                misses: 1,
                bypasses: 1
            }
        );
    }

    #[test]
    fn errors_are_cached_per_key() {
        let mut p = Program::new("bad");
        p.body = Step::Loop {
            name: "L".into(),
            count: parse_expression("100").unwrap(),
            var: None,
            body: Box::new(Step::Exec {
                name: "A".into(),
                cost: None,
                code: vec![],
            }),
        };
        let limits = FlattenLimits {
            max_loop_iterations: 5,
            ..Default::default()
        };
        let cache = ElaborationCache::new();
        let m = machine(1);
        let e1 = cache.get_or_flatten(&p, &m, limits).unwrap_err();
        let e2 = cache.get_or_flatten(&p, &m, limits).unwrap_err();
        assert_eq!(e1, e2);
        assert_eq!(
            cache.stats(),
            ElabStats {
                hits: 1,
                misses: 1,
                bypasses: 0
            }
        );
    }

    #[test]
    fn concurrent_same_key_flattens_exactly_once() {
        let cache = ElaborationCache::new();
        let p = program();
        let m = machine(4);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    cache
                        .get_or_flatten(&p, &m, FlattenLimits::default())
                        .unwrap();
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "{stats:?}");
        assert_eq!(stats.hits, 7, "{stats:?}");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_is_hard_under_concurrency() {
        // 16 threads race distinct keys into a 4-entry cache: the slot
        // reservation must keep the bound exact, not approximate.
        let cache = ElaborationCache::with_capacity(4);
        let p = program();
        std::thread::scope(|scope| {
            for procs in 1..=16usize {
                let cache = &cache;
                let p = &p;
                scope.spawn(move || {
                    cache
                        .get_or_flatten(p, &machine(procs), FlattenLimits::default())
                        .unwrap();
                });
            }
        });
        let stats = cache.stats();
        assert!(cache.len() <= 4, "{} entries", cache.len());
        assert_eq!(stats.misses as usize, cache.len(), "{stats:?}");
        assert_eq!(stats.misses + stats.bypasses, 16, "{stats:?}");
    }

    #[test]
    fn snapshot_roundtrips_through_seed() {
        let cache = ElaborationCache::new();
        let p = program();
        for procs in [1, 2, 4] {
            cache
                .get_or_flatten(&p, &machine(procs), FlattenLimits::default())
                .unwrap();
        }
        let entries = cache.snapshot();
        assert_eq!(entries.len(), 3);
        // Deterministic order regardless of shard layout.
        let procs: Vec<usize> = entries.iter().map(|e| e.sp.processes).collect();
        assert_eq!(procs, vec![1, 2, 4]);

        // Seed a fresh cache: every subsequent lookup is a pure hit and
        // serves the seeded Arc (no re-flatten).
        let seeded = ElaborationCache::new();
        for e in &entries {
            assert!(seeded.seed(e.sp, e.comm, e.limits, e.ops.clone()));
        }
        assert_eq!(
            seeded.stats(),
            ElabStats::default(),
            "seeding is not a lookup"
        );
        for e in &entries {
            let m = MachineModel::new(e.sp, e.comm).unwrap();
            let got = seeded.get_or_flatten(&p, &m, e.limits).unwrap();
            assert!(
                Arc::ptr_eq(&got, &e.ops),
                "seeded entry must be served as-is"
            );
        }
        assert_eq!(seeded.stats().hits, 3);
        assert_eq!(seeded.stats().misses, 0);
    }

    #[test]
    fn snapshot_skips_failed_elaborations() {
        let mut p = Program::new("bad");
        p.body = Step::Loop {
            name: "L".into(),
            count: parse_expression("100").unwrap(),
            var: None,
            body: Box::new(Step::Exec {
                name: "A".into(),
                cost: None,
                code: vec![],
            }),
        };
        let limits = FlattenLimits {
            max_loop_iterations: 5,
            ..Default::default()
        };
        let cache = ElaborationCache::new();
        cache.get_or_flatten(&p, &machine(1), limits).unwrap_err();
        assert!(cache.snapshot().is_empty());
    }

    #[test]
    fn seed_respects_capacity() {
        let cache = ElaborationCache::with_capacity(1);
        let p = program();
        let entry = {
            let scratch = ElaborationCache::new();
            scratch
                .get_or_flatten(&p, &machine(1), FlattenLimits::default())
                .unwrap();
            scratch.snapshot().remove(0)
        };
        assert!(cache.seed(entry.sp, entry.comm, entry.limits, entry.ops.clone()));
        // A second, distinct seed bounces off the 1-entry bound.
        let other = {
            let scratch = ElaborationCache::new();
            scratch
                .get_or_flatten(&p, &machine(2), FlattenLimits::default())
                .unwrap();
            scratch.snapshot().remove(0)
        };
        assert!(!cache.seed(other.sp, other.comm, other.limits, other.ops));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_distinct_keys_all_interned() {
        let cache = ElaborationCache::new();
        let p = program();
        std::thread::scope(|scope| {
            for procs in 1..=8usize {
                let cache = &cache;
                let p = &p;
                scope.spawn(move || {
                    let m = machine(procs);
                    for _ in 0..4 {
                        cache
                            .get_or_flatten(p, &m, FlattenLimits::default())
                            .unwrap();
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(cache.len(), 8);
        assert_eq!(stats.misses, 8, "{stats:?}");
        assert_eq!(stats.hits, 24, "{stats:?}");
    }
}
