//! Per-process elaboration of the Program IR into primitive timed ops.
//!
//! Model state (globals mutated by code fragments, guards, loop counts,
//! cost functions) does not depend on simulated time, so each MPI
//! process's execution can be fully elaborated *before* simulation: the
//! result is a [`PrimOp`] list the simulation process replays. Collective
//! operations are expanded into control messages + an analytic hold (see
//! crate docs).

use crate::program::{MpiOp, Program, Step};
use prophet_expr::{exec_fragment, Env, ExprError, Value};
use prophet_machine::MachineModel;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A primitive timed operation executed by the simulation process.
#[derive(Debug, Clone, PartialEq)]
pub enum PrimOp {
    /// Trace marker: element entered.
    Enter(String),
    /// Trace marker: element exited.
    Exit(String),
    /// Occupy one CPU of the owning node for `seconds`.
    Compute {
        /// Element name.
        element: String,
        /// Service time.
        seconds: f64,
    },
    /// Send `bytes` to rank `dest` (eager; sender pays only overhead).
    SendTo {
        /// Element name.
        element: String,
        /// Destination rank.
        dest: usize,
        /// Payload size.
        bytes: u64,
        /// Message tag (user tags ≥ 0; control tags < 0).
        tag: i64,
    },
    /// Receive from rank `src` with tag `tag`; complete at the Hockney
    /// arrival time.
    RecvFrom {
        /// Element name.
        element: String,
        /// Expected source rank.
        src: usize,
        /// Expected tag.
        tag: i64,
        /// Transfer bytes (for arrival-time computation; must match the
        /// sender's size in a well-formed model).
        bytes: u64,
    },
    /// Hold (no CPU): used for analytic collective costs.
    Wait {
        /// Element name.
        element: String,
        /// Duration.
        seconds: f64,
    },
    /// Run thread-team arms concurrently on the node's CPU facility, then
    /// join. Used for both `<<parallel+>>` regions and UML fork/join.
    Threads {
        /// Element name (trace label).
        element: String,
        /// Per-thread op lists.
        arms: Vec<Vec<PrimOp>>,
    },
    /// Acquire the process-local lock with this id (blocks; `<<critical+>>`).
    Lock(usize),
    /// Release a previously acquired lock.
    Unlock(usize),
}

/// Elaboration failure: which node or expression broke, and how.
///
/// Structured (not stringly) so callers can match on the failure class
/// and so the offending element/expression survives into the
/// `prophet_core::Error::source()` chain — [`FlattenError`] sits between
/// `EstimatorError::Flatten` above it and [`ExprError`] below it.
#[derive(Debug, Clone, PartialEq)]
pub enum FlattenError {
    /// An expression or code fragment failed to evaluate. `context`
    /// names the expression's role and owning node (e.g. ``cost of
    /// `A1` ``); the underlying [`ExprError`] is the `source()`.
    Eval {
        /// What was being evaluated, and on which element.
        context: String,
        /// The expression-level failure.
        source: ExprError,
    },
    /// A cost expression evaluated to a negative or non-finite time.
    InvalidTime {
        /// Role + owning element (e.g. ``cost of `A1` ``).
        context: String,
        /// The offending value.
        value: f64,
    },
    /// A loop count evaluated to a negative or non-finite value.
    InvalidCount {
        /// Role + owning element (e.g. ``iterations of `L` ``).
        context: String,
        /// The offending value.
        value: f64,
    },
    /// A `<<loop+>>` unrolls past [`FlattenLimits::max_loop_iterations`].
    LoopLimit {
        /// The loop element.
        element: String,
        /// How many iterations it asked for.
        iterations: u64,
        /// The limit in force.
        limit: u64,
    },
    /// A process elaborated past [`FlattenLimits::max_ops`].
    OpLimit {
        /// The process that overflowed.
        pid: usize,
        /// The limit in force.
        limit: usize,
    },
    /// A rank expression resolved outside `0..processes`.
    RankOutOfRange {
        /// Role + owning element (e.g. ``dest of `s` ``).
        context: String,
        /// The resolved (rounded) rank.
        rank: f64,
        /// The process count in force.
        processes: usize,
    },
    /// A message-size expression resolved to a negative or non-finite
    /// byte count.
    InvalidSize {
        /// Role + owning element (e.g. ``size of `s` ``).
        context: String,
        /// The offending value.
        value: f64,
    },
    /// A thread-team size expression resolved outside `1..=4096`.
    InvalidTeam {
        /// The parallel-region element.
        element: String,
        /// The offending value.
        value: f64,
    },
    /// An MPI element inside a thread team (MPI_THREAD_FUNNELED).
    MpiInThread {
        /// The offending MPI element.
        element: String,
    },
    /// A parallel region or fork nested inside a thread team.
    NestedParallel {
        /// The offending element (empty for an anonymous fork).
        element: String,
    },
}

impl fmt::Display for FlattenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flatten error: ")?;
        match self {
            FlattenError::Eval { context, .. } => {
                write!(f, "cannot evaluate {context}")
            }
            FlattenError::InvalidTime { context, value } => {
                write!(f, "{context} evaluated to invalid time {value}")
            }
            FlattenError::InvalidCount { context, value } => {
                write!(f, "{context} evaluated to invalid count {value}")
            }
            FlattenError::LoopLimit {
                element,
                iterations,
                limit,
            } => write!(
                f,
                "loop `{element}` unrolls to {iterations} iterations (limit {limit})"
            ),
            FlattenError::OpLimit { pid, limit } => write!(
                f,
                "process {pid} exceeds {limit} primitive operations; raise FlattenLimits::max_ops (EstimatorOptions::limits) or simplify the model"
            ),
            FlattenError::RankOutOfRange {
                context,
                rank,
                processes,
            } => write!(f, "{context}: rank {rank} out of range 0..{processes}"),
            FlattenError::InvalidSize { context, value } => {
                write!(f, "{context}: invalid size {value}")
            }
            FlattenError::InvalidTeam { element, value } => write!(
                f,
                "threads of `{element}` evaluated to invalid team size {value}"
            ),
            FlattenError::MpiInThread { element } => write!(
                f,
                "MPI element `{element}` inside a thread team is not supported (MPI_THREAD_FUNNELED)"
            ),
            FlattenError::NestedParallel { element } => {
                if element.is_empty() {
                    write!(f, "nested fork inside a thread team is not supported")
                } else {
                    write!(f, "nested parallel region `{element}` is not supported")
                }
            }
        }
    }
}

impl std::error::Error for FlattenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlattenError::Eval { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Limits guarding runaway elaboration.
///
/// Part of the elaboration-cache key ([`crate::elab::ElaborationCache`]):
/// two scenarios with different limits may elaborate differently (one can
/// fail where the other succeeds), so they never share a cache entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlattenLimits {
    /// Maximum primitive ops per process.
    pub max_ops: usize,
    /// Maximum loop iterations per `<<loop+>>` instance.
    pub max_loop_iterations: u64,
}

impl Default for FlattenLimits {
    fn default() -> Self {
        Self {
            max_ops: 5_000_000,
            max_loop_iterations: 1_000_000,
        }
    }
}

/// Process-wide count of [`flatten_for_process`] invocations.
///
/// The elaboration analogue of `prophet_core::transform_invocations`:
/// benches and smoke tests assert the flatten-once contract of the
/// elaboration cache against it ("a cached sweep flattens once per SP
/// point"). Unlike the transform counter this one is a process-wide
/// atomic, because sweeps flatten from worker threads.
pub fn flatten_invocations() -> u64 {
    FLATTEN_CALLS.load(Ordering::Relaxed)
}

static FLATTEN_CALLS: AtomicU64 = AtomicU64::new(0);

/// Elaborate `program` for MPI process `pid`.
pub fn flatten_for_process(
    program: &Program,
    machine: &MachineModel,
    pid: usize,
    limits: FlattenLimits,
) -> Result<Vec<PrimOp>, FlattenError> {
    FLATTEN_CALLS.fetch_add(1, Ordering::Relaxed);
    let sp = machine.sp;
    let mut env = Env::new();
    // System properties, exactly the execute() parameters of the paper
    // plus machine shape: uid (user/run id), pid, tid, P (process count),
    // N (total CPUs), M (nodes), threads.
    env.set_num("uid", 0.0);
    env.set_num("pid", pid as f64);
    env.set_num("tid", 0.0);
    env.set_num("P", sp.processes as f64);
    env.set_num("N", sp.total_cpus() as f64);
    env.set_num("M", sp.nodes as f64);
    env.set_num("nodes", sp.nodes as f64);
    env.set_num("cpus", sp.cpus_per_node as f64);
    env.set_num("threads", sp.threads_per_process as f64);
    for (name, init) in program.globals.iter().chain(&program.locals) {
        env.set_num(name.clone(), *init);
    }
    for f in &program.functions {
        env.define_function(f.clone());
    }

    let mut fl = Flattener {
        machine,
        pid,
        limits,
        collective_seq: 0,
        ops_emitted: 0,
        locks: Vec::new(),
    };
    let mut out = Vec::new();
    fl.walk(&program.body, &mut env, &mut out)?;
    Ok(out)
}

/// Number of distinct locks referenced by an op list (including nested
/// thread arms). The estimator creates one 1-server facility per lock.
pub fn lock_count(ops: &[PrimOp]) -> usize {
    fn scan(ops: &[PrimOp], max: &mut usize) {
        for op in ops {
            match op {
                PrimOp::Lock(id) | PrimOp::Unlock(id) => *max = (*max).max(id + 1),
                PrimOp::Threads { arms, .. } => {
                    for a in arms {
                        scan(a, max);
                    }
                }
                _ => {}
            }
        }
    }
    let mut max = 0;
    scan(ops, &mut max);
    max
}

/// Stable content digest of a flattened op list (FNV-1a over a canonical
/// byte encoding; independent of `std`'s hasher internals).
///
/// Together with the op count this pins the *shape* of an elaboration:
/// golden tests snapshot `(ops.len(), op_digest(&ops))` per rank so a
/// flattener or cache refactor cannot silently reorder, drop, or
/// renumber primitive ops. Every field of every op participates —
/// element names, times (bit-exact), ranks, tags, sizes, lock ids, and
/// nested thread arms (with arm boundaries marked, so moving an op
/// between arms changes the digest).
pub fn op_digest(ops: &[PrimOp]) -> u64 {
    fn s(h: &mut Fnv, v: &str) {
        h.word(v.len() as u64);
        h.bytes(v.as_bytes());
    }
    fn walk(h: &mut Fnv, ops: &[PrimOp]) {
        for op in ops {
            match op {
                PrimOp::Enter(e) => {
                    h.word(1);
                    s(h, e);
                }
                PrimOp::Exit(e) => {
                    h.word(2);
                    s(h, e);
                }
                PrimOp::Compute { element, seconds } => {
                    h.word(3);
                    s(h, element);
                    h.word(seconds.to_bits());
                }
                PrimOp::SendTo {
                    element,
                    dest,
                    bytes: size,
                    tag,
                } => {
                    h.word(4);
                    s(h, element);
                    h.word(*dest as u64);
                    h.word(*size);
                    h.word(*tag as u64);
                }
                PrimOp::RecvFrom {
                    element,
                    src,
                    tag,
                    bytes: size,
                } => {
                    h.word(5);
                    s(h, element);
                    h.word(*src as u64);
                    h.word(*tag as u64);
                    h.word(*size);
                }
                PrimOp::Wait { element, seconds } => {
                    h.word(6);
                    s(h, element);
                    h.word(seconds.to_bits());
                }
                PrimOp::Threads { element, arms } => {
                    h.word(7);
                    s(h, element);
                    h.word(arms.len() as u64);
                    for arm in arms {
                        h.word(8); // arm boundary marker
                        h.word(arm.len() as u64);
                        walk(h, arm);
                    }
                }
                PrimOp::Lock(id) => {
                    h.word(9);
                    h.word(*id as u64);
                }
                PrimOp::Unlock(id) => {
                    h.word(10);
                    h.word(*id as u64);
                }
            }
        }
    }
    let mut h = Fnv::new();
    h.word(ops.len() as u64);
    walk(&mut h, ops);
    h.finish()
}

/// Incremental FNV-1a fold shared by [`op_digest`] and the
/// elaboration-cache key hash ([`crate::elab`]) — one set of constants,
/// one byte order.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Self(0xcbf29ce484222325)
    }

    pub(crate) fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= x as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    pub(crate) fn word(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Control-message tag space for collectives: tag = COLLECTIVE_BASE - seq.
pub const COLLECTIVE_BASE: i64 = -1_000_000;
/// Tag space for thread-team join notifications.
pub const JOIN_BASE: i64 = -2_000_000;

struct Flattener<'a> {
    machine: &'a MachineModel,
    pid: usize,
    limits: FlattenLimits,
    /// Per-process collective sequence number; SPMD programs agree on it.
    collective_seq: i64,
    ops_emitted: usize,
    /// Interned lock names for `<<critical+>>`.
    locks: Vec<String>,
}

impl<'a> Flattener<'a> {
    fn emit(&mut self, out: &mut Vec<PrimOp>, op: PrimOp) -> Result<(), FlattenError> {
        self.ops_emitted += 1;
        if self.ops_emitted > self.limits.max_ops {
            return Err(FlattenError::OpLimit {
                pid: self.pid,
                limit: self.limits.max_ops,
            });
        }
        out.push(op);
        Ok(())
    }

    fn eval_num(
        &self,
        expr: &prophet_expr::Expr,
        env: &mut Env,
        what: &str,
    ) -> Result<f64, FlattenError> {
        expr.eval(env)
            .and_then(Value::as_num)
            .map_err(|e| FlattenError::Eval {
                context: what.to_string(),
                source: e,
            })
    }

    fn eval_rank(
        &self,
        expr: &prophet_expr::Expr,
        env: &mut Env,
        what: &str,
    ) -> Result<usize, FlattenError> {
        let v = self.eval_num(expr, env, what)?;
        let p = self.machine.sp.processes;
        let r = v.round();
        if r < 0.0 || r >= p as f64 {
            return Err(FlattenError::RankOutOfRange {
                context: what.to_string(),
                rank: r,
                processes: p,
            });
        }
        Ok(r as usize)
    }

    fn eval_bytes(
        &self,
        expr: &prophet_expr::Expr,
        env: &mut Env,
        what: &str,
    ) -> Result<u64, FlattenError> {
        let v = self.eval_num(expr, env, what)?;
        if v < 0.0 || !v.is_finite() {
            return Err(FlattenError::InvalidSize {
                context: what.to_string(),
                value: v,
            });
        }
        Ok(v.round() as u64)
    }

    fn walk(
        &mut self,
        step: &Step,
        env: &mut Env,
        out: &mut Vec<PrimOp>,
    ) -> Result<(), FlattenError> {
        match step {
            Step::Nop => Ok(()),
            Step::Seq(items) => {
                for s in items {
                    self.walk(s, env, out)?;
                }
                Ok(())
            }
            Step::Exec { name, cost, code } => {
                self.emit(out, PrimOp::Enter(name.clone()))?;
                if !code.is_empty() {
                    exec_fragment(code, env).map_err(|e| FlattenError::Eval {
                        context: format!("code fragment of `{name}`"),
                        source: e,
                    })?;
                }
                let seconds = match cost {
                    Some(expr) => {
                        let t = self.eval_num(expr, env, &format!("cost of `{name}`"))?;
                        if !(t.is_finite() && t >= 0.0) {
                            return Err(FlattenError::InvalidTime {
                                context: format!("cost of `{name}`"),
                                value: t,
                            });
                        }
                        t
                    }
                    None => 0.0,
                };
                self.emit(
                    out,
                    PrimOp::Compute {
                        element: name.clone(),
                        seconds,
                    },
                )?;
                self.emit(out, PrimOp::Exit(name.clone()))
            }
            Step::Branch(arms) => {
                for (guard, arm) in arms {
                    let taken = match guard {
                        Some(g) => g
                            .eval(env)
                            .map_err(|e| FlattenError::Eval {
                                context: "guard".into(),
                                source: e,
                            })?
                            .truthy(),
                        None => true,
                    };
                    if taken {
                        return self.walk(arm, env, out);
                    }
                }
                Ok(()) // no arm taken: decision falls through
            }
            Step::Composite { name, body } => {
                self.emit(out, PrimOp::Enter(name.clone()))?;
                self.walk(body, env, out)?;
                self.emit(out, PrimOp::Exit(name.clone()))
            }
            Step::Loop {
                name,
                count,
                var,
                body,
            } => {
                let n = self.eval_num(count, env, &format!("iterations of `{name}`"))?;
                if !(n.is_finite() && n >= 0.0) {
                    return Err(FlattenError::InvalidCount {
                        context: format!("iterations of `{name}`"),
                        value: n,
                    });
                }
                let n = n.round() as u64;
                if n > self.limits.max_loop_iterations {
                    return Err(FlattenError::LoopLimit {
                        element: name.clone(),
                        iterations: n,
                        limit: self.limits.max_loop_iterations,
                    });
                }
                self.emit(out, PrimOp::Enter(name.clone()))?;
                let saved = var.as_ref().and_then(|v| env.get_var(v));
                for i in 0..n {
                    if let Some(v) = var {
                        env.set_num(v.clone(), i as f64);
                    }
                    self.walk(body, env, out)?;
                }
                if let Some(v) = var {
                    match saved {
                        Some(old) => env.set_var(v.clone(), old),
                        None => {
                            env.remove_var(v);
                        }
                    }
                }
                self.emit(out, PrimOp::Exit(name.clone()))
            }
            Step::Parallel(arms) => {
                // UML fork/join: one thread per arm.
                let mut arm_ops = Vec::with_capacity(arms.len());
                for (t, arm) in arms.iter().enumerate() {
                    let mut thread_env = env.clone();
                    thread_env.set_num("tid", t as f64);
                    let mut ops = Vec::new();
                    self.walk_thread(arm, &mut thread_env, &mut ops)?;
                    arm_ops.push(ops);
                }
                self.emit(
                    out,
                    PrimOp::Threads {
                        element: "fork".into(),
                        arms: arm_ops,
                    },
                )
            }
            Step::ParallelRegion {
                name,
                threads,
                body,
            } => {
                let team = match threads {
                    Some(expr) => {
                        let t = self.eval_num(expr, env, &format!("threads of `{name}`"))?;
                        if !(1.0..=4096.0).contains(&t) {
                            return Err(FlattenError::InvalidTeam {
                                element: name.clone(),
                                value: t,
                            });
                        }
                        t.round() as usize
                    }
                    None => self.machine.sp.threads_per_process,
                };
                let mut arm_ops = Vec::with_capacity(team);
                for t in 0..team {
                    let mut thread_env = env.clone();
                    thread_env.set_num("tid", t as f64);
                    let mut ops = Vec::new();
                    self.walk_thread(body, &mut thread_env, &mut ops)?;
                    arm_ops.push(ops);
                }
                self.emit(out, PrimOp::Enter(name.clone()))?;
                self.emit(
                    out,
                    PrimOp::Threads {
                        element: name.clone(),
                        arms: arm_ops,
                    },
                )?;
                self.emit(out, PrimOp::Exit(name.clone()))
            }
            Step::Critical { name, lock, body } => {
                let id = self.lock_id(lock);
                self.emit(out, PrimOp::Enter(name.clone()))?;
                self.emit(out, PrimOp::Lock(id))?;
                self.walk(body, env, out)?;
                self.emit(out, PrimOp::Unlock(id))?;
                self.emit(out, PrimOp::Exit(name.clone()))
            }
            Step::Mpi { name, op } => self.walk_mpi(name, op, env, out),
        }
    }

    fn lock_id(&mut self, lock: &str) -> usize {
        match self.locks.iter().position(|l| l == lock) {
            Some(i) => i,
            None => {
                self.locks.push(lock.to_string());
                self.locks.len() - 1
            }
        }
    }

    /// Threads may compute but not communicate (MPI inside an OpenMP
    /// region is rejected — the common MPI_THREAD_FUNNELED restriction).
    fn walk_thread(
        &mut self,
        step: &Step,
        env: &mut Env,
        out: &mut Vec<PrimOp>,
    ) -> Result<(), FlattenError> {
        match step {
            Step::Mpi { name, .. } => Err(FlattenError::MpiInThread {
                element: name.clone(),
            }),
            Step::ParallelRegion { name, .. } => Err(FlattenError::NestedParallel {
                element: name.clone(),
            }),
            Step::Parallel(_) => Err(FlattenError::NestedParallel {
                element: String::new(),
            }),
            Step::Critical { name, lock, body } => {
                // Keep thread restrictions in force inside the body.
                let id = self.lock_id(lock);
                self.emit(out, PrimOp::Enter(name.clone()))?;
                self.emit(out, PrimOp::Lock(id))?;
                self.walk_thread(body, env, out)?;
                self.emit(out, PrimOp::Unlock(id))?;
                self.emit(out, PrimOp::Exit(name.clone()))
            }
            Step::Seq(items) => {
                for s in items {
                    self.walk_thread(s, env, out)?;
                }
                Ok(())
            }
            Step::Composite { name, body } => {
                self.emit(out, PrimOp::Enter(name.clone()))?;
                self.walk_thread(body, env, out)?;
                self.emit(out, PrimOp::Exit(name.clone()))
            }
            Step::Loop {
                name,
                count,
                var,
                body,
            } => {
                // Re-implement loop semantics with thread restrictions.
                let n = self.eval_num(count, env, &format!("iterations of `{name}`"))?;
                if !(n.is_finite() && n >= 0.0) {
                    return Err(FlattenError::InvalidCount {
                        context: format!("iterations of `{name}`"),
                        value: n,
                    });
                }
                let n = n.round() as u64;
                if n > self.limits.max_loop_iterations {
                    return Err(FlattenError::LoopLimit {
                        element: name.clone(),
                        iterations: n,
                        limit: self.limits.max_loop_iterations,
                    });
                }
                self.emit(out, PrimOp::Enter(name.clone()))?;
                let saved = var.as_ref().and_then(|v| env.get_var(v));
                for i in 0..n {
                    if let Some(v) = var {
                        env.set_num(v.clone(), i as f64);
                    }
                    self.walk_thread(body, env, out)?;
                }
                if let Some(v) = var {
                    match saved {
                        Some(old) => env.set_var(v.clone(), old),
                        None => {
                            env.remove_var(v);
                        }
                    }
                }
                self.emit(out, PrimOp::Exit(name.clone()))
            }
            Step::Branch(arms) => {
                for (guard, arm) in arms {
                    let taken = match guard {
                        Some(g) => g
                            .eval(env)
                            .map_err(|e| FlattenError::Eval {
                                context: "guard".into(),
                                source: e,
                            })?
                            .truthy(),
                        None => true,
                    };
                    if taken {
                        return self.walk_thread(arm, env, out);
                    }
                }
                Ok(())
            }
            other => self.walk(other, env, out),
        }
    }

    fn walk_mpi(
        &mut self,
        name: &str,
        op: &MpiOp,
        env: &mut Env,
        out: &mut Vec<PrimOp>,
    ) -> Result<(), FlattenError> {
        let sp = self.machine.sp;
        let p = sp.processes;
        let me = self.pid;
        self.emit(out, PrimOp::Enter(name.to_string()))?;
        match op {
            MpiOp::Send { dest, size, tag } => {
                let dest = self.eval_rank(dest, env, &format!("dest of `{name}`"))?;
                let bytes = self.eval_bytes(size, env, &format!("size of `{name}`"))?;
                self.emit(
                    out,
                    PrimOp::SendTo {
                        element: name.to_string(),
                        dest,
                        bytes,
                        tag: *tag,
                    },
                )?;
            }
            MpiOp::Recv { src, tag } => {
                let src = self.eval_rank(src, env, &format!("src of `{name}`"))?;
                self.emit(
                    out,
                    PrimOp::RecvFrom {
                        element: name.to_string(),
                        src,
                        tag: *tag,
                        bytes: 0,
                    },
                )?;
            }
            MpiOp::Broadcast { root, size } => {
                let root = self.eval_rank(root, env, &format!("root of `{name}`"))?;
                let bytes = self.eval_bytes(size, env, &format!("size of `{name}`"))?;
                let cost = self.machine.comm.broadcast_time(p, bytes);
                self.emit_collective(name, root, cost, out)?;
            }
            MpiOp::Reduce { root, size } => {
                let root = self.eval_rank(root, env, &format!("root of `{name}`"))?;
                let bytes = self.eval_bytes(size, env, &format!("size of `{name}`"))?;
                let cost = self.machine.comm.reduce_time(p, bytes);
                self.emit_collective(name, root, cost, out)?;
            }
            MpiOp::Allreduce { size } => {
                let bytes = self.eval_bytes(size, env, &format!("size of `{name}`"))?;
                let cost = self.machine.comm.allreduce_time(p, bytes);
                self.emit_collective(name, 0, cost, out)?;
            }
            MpiOp::Scatter { root, size } => {
                let root = self.eval_rank(root, env, &format!("root of `{name}`"))?;
                let bytes = self.eval_bytes(size, env, &format!("size of `{name}`"))?;
                let cost = self.machine.comm.scatter_time(p, bytes);
                self.emit_collective(name, root, cost, out)?;
            }
            MpiOp::Gather { root, size } => {
                let root = self.eval_rank(root, env, &format!("root of `{name}`"))?;
                let bytes = self.eval_bytes(size, env, &format!("size of `{name}`"))?;
                let cost = self.machine.comm.gather_time(p, bytes);
                self.emit_collective(name, root, cost, out)?;
            }
            MpiOp::Barrier => {
                let cost = self.machine.comm.barrier_time(p);
                self.emit_collective(name, 0, cost, out)?;
            }
        }
        self.emit(out, PrimOp::Exit(name.to_string()))?;
        // tag field of Send is user-facing; pid/me silence only when p==1.
        let _ = me;
        Ok(())
    }

    /// Collective expansion: synchronize through rank `root` with
    /// zero-byte control messages, then hold the analytic cost.
    fn emit_collective(
        &mut self,
        name: &str,
        root: usize,
        cost: f64,
        out: &mut Vec<PrimOp>,
    ) -> Result<(), FlattenError> {
        let p = self.machine.sp.processes;
        let tag = COLLECTIVE_BASE - self.collective_seq;
        self.collective_seq += 1;
        if p > 1 {
            if self.pid == root {
                // Gather phase: receive a control message from every other
                // rank (in rank order — deterministic and deadlock-free
                // since all are already sent or will be).
                for other in (0..p).filter(|&r| r != root) {
                    self.emit(
                        out,
                        PrimOp::RecvFrom {
                            element: name.to_string(),
                            src: other,
                            tag,
                            bytes: 0,
                        },
                    )?;
                }
                // Release phase.
                for other in (0..p).filter(|&r| r != root) {
                    self.emit(
                        out,
                        PrimOp::SendTo {
                            element: name.to_string(),
                            dest: other,
                            bytes: 0,
                            tag,
                        },
                    )?;
                }
            } else {
                self.emit(
                    out,
                    PrimOp::SendTo {
                        element: name.to_string(),
                        dest: root,
                        bytes: 0,
                        tag,
                    },
                )?;
                self.emit(
                    out,
                    PrimOp::RecvFrom {
                        element: name.to_string(),
                        src: root,
                        tag,
                        bytes: 0,
                    },
                )?;
            }
        }
        if cost > 0.0 {
            self.emit(
                out,
                PrimOp::Wait {
                    element: name.to_string(),
                    seconds: cost,
                },
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_expr::{parse_expression, parse_statements, FunctionDef};
    use prophet_machine::{CommParams, SystemParams};

    fn machine(p: usize) -> MachineModel {
        MachineModel::new(SystemParams::flat_mpi(p.max(1), 1), CommParams::default()).unwrap()
    }

    fn exec(name: &str, cost: &str) -> Step {
        Step::Exec {
            name: name.into(),
            cost: Some(parse_expression(cost).unwrap()),
            code: vec![],
        }
    }

    #[test]
    fn exec_becomes_enter_compute_exit() {
        let mut p = Program::new("t");
        p.body = exec("A1", "2.5");
        let ops = flatten_for_process(&p, &machine(1), 0, Default::default()).unwrap();
        assert_eq!(
            ops,
            vec![
                PrimOp::Enter("A1".into()),
                PrimOp::Compute {
                    element: "A1".into(),
                    seconds: 2.5
                },
                PrimOp::Exit("A1".into())
            ]
        );
    }

    #[test]
    fn code_fragment_affects_later_guard() {
        // Figure 7: A1's fragment sets GV = 1; the branch then takes SA.
        let mut p = Program::new("t");
        p.globals.push(("GV".into(), 0.0));
        p.body = Step::Seq(vec![
            Step::Exec {
                name: "A1".into(),
                cost: None,
                code: parse_statements("GV = 1;").unwrap(),
            },
            Step::Branch(vec![
                (Some(parse_expression("GV == 1").unwrap()), exec("SA1", "1")),
                (None, exec("A2", "1")),
            ]),
        ]);
        let ops = flatten_for_process(&p, &machine(1), 0, Default::default()).unwrap();
        let names: Vec<_> = ops
            .iter()
            .filter_map(|o| match o {
                PrimOp::Compute { element, .. } => Some(element.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["A1", "SA1"]);
    }

    #[test]
    fn cost_functions_and_system_vars() {
        let mut p = Program::new("t");
        p.functions
            .push(FunctionDef::parse("F", &["x"], "0.5 * x + 0.125 * pid").unwrap());
        p.body = exec("A", "F(P)");
        let ops = flatten_for_process(&p, &machine(4), 2, Default::default()).unwrap();
        match &ops[1] {
            PrimOp::Compute { seconds, .. } => assert_eq!(*seconds, 0.5 * 4.0 + 0.125 * 2.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn loop_unrolls_with_variable() {
        let mut p = Program::new("t");
        p.body = Step::Loop {
            name: "L".into(),
            count: parse_expression("3").unwrap(),
            var: Some("i".into()),
            body: Box::new(exec("S", "1 + i")),
        };
        let ops = flatten_for_process(&p, &machine(1), 0, Default::default()).unwrap();
        let costs: Vec<f64> = ops
            .iter()
            .filter_map(|o| match o {
                PrimOp::Compute { seconds, .. } => Some(*seconds),
                _ => None,
            })
            .collect();
        assert_eq!(costs, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn loop_limit_enforced() {
        let mut p = Program::new("t");
        p.body = Step::Loop {
            name: "L".into(),
            count: parse_expression("10").unwrap(),
            var: None,
            body: Box::new(exec("S", "1")),
        };
        let limits = FlattenLimits {
            max_loop_iterations: 5,
            ..Default::default()
        };
        let err = flatten_for_process(&p, &machine(1), 0, limits).unwrap_err();
        assert!(
            matches!(
                err,
                FlattenError::LoopLimit {
                    iterations: 10,
                    limit: 5,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn send_recv_resolve_ranks() {
        let mut p = Program::new("t");
        p.body = Step::Branch(vec![
            (
                Some(parse_expression("pid == 0").unwrap()),
                Step::Mpi {
                    name: "s".into(),
                    op: MpiOp::Send {
                        dest: parse_expression("pid + 1").unwrap(),
                        size: parse_expression("1024").unwrap(),
                        tag: 7,
                    },
                },
            ),
            (
                None,
                Step::Mpi {
                    name: "r".into(),
                    op: MpiOp::Recv {
                        src: parse_expression("pid - 1").unwrap(),
                        tag: 7,
                    },
                },
            ),
        ]);
        let m = machine(2);
        let ops0 = flatten_for_process(&p, &m, 0, Default::default()).unwrap();
        let ops1 = flatten_for_process(&p, &m, 1, Default::default()).unwrap();
        assert!(ops0.iter().any(|o| matches!(
            o,
            PrimOp::SendTo {
                dest: 1,
                bytes: 1024,
                tag: 7,
                ..
            }
        )));
        assert!(ops1
            .iter()
            .any(|o| matches!(o, PrimOp::RecvFrom { src: 0, tag: 7, .. })));
    }

    #[test]
    fn rank_out_of_range_rejected() {
        let mut p = Program::new("t");
        p.body = Step::Mpi {
            name: "s".into(),
            op: MpiOp::Send {
                dest: parse_expression("5").unwrap(),
                size: parse_expression("0").unwrap(),
                tag: 0,
            },
        };
        let err = flatten_for_process(&p, &machine(2), 0, Default::default()).unwrap_err();
        assert!(
            matches!(&err, FlattenError::RankOutOfRange { processes: 2, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn barrier_expands_to_ctrl_messages() {
        let mut p = Program::new("t");
        p.body = Step::Mpi {
            name: "bar".into(),
            op: MpiOp::Barrier,
        };
        let m = machine(3);
        let root_ops = flatten_for_process(&p, &m, 0, Default::default()).unwrap();
        let leaf_ops = flatten_for_process(&p, &m, 1, Default::default()).unwrap();
        let recvs = root_ops
            .iter()
            .filter(|o| matches!(o, PrimOp::RecvFrom { .. }))
            .count();
        let sends = root_ops
            .iter()
            .filter(|o| matches!(o, PrimOp::SendTo { .. }))
            .count();
        assert_eq!((recvs, sends), (2, 2), "root gathers then releases");
        let recvs = leaf_ops
            .iter()
            .filter(|o| matches!(o, PrimOp::RecvFrom { .. }))
            .count();
        let sends = leaf_ops
            .iter()
            .filter(|o| matches!(o, PrimOp::SendTo { .. }))
            .count();
        assert_eq!((recvs, sends), (1, 1));
        // Both hold the same analytic cost.
        let wait = |ops: &[PrimOp]| {
            ops.iter()
                .find_map(|o| match o {
                    PrimOp::Wait { seconds, .. } => Some(*seconds),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(wait(&root_ops), wait(&leaf_ops));
    }

    #[test]
    fn single_process_collective_is_free() {
        let mut p = Program::new("t");
        p.body = Step::Mpi {
            name: "bar".into(),
            op: MpiOp::Barrier,
        };
        let ops = flatten_for_process(&p, &machine(1), 0, Default::default()).unwrap();
        assert_eq!(
            ops,
            vec![PrimOp::Enter("bar".into()), PrimOp::Exit("bar".into())]
        );
    }

    #[test]
    fn parallel_region_builds_thread_arms() {
        let mut p = Program::new("t");
        p.body = Step::ParallelRegion {
            name: "R".into(),
            threads: Some(parse_expression("3").unwrap()),
            body: Box::new(exec("W", "1 + tid")),
        };
        let ops = flatten_for_process(&p, &machine(1), 0, Default::default()).unwrap();
        let team = ops
            .iter()
            .find_map(|o| match o {
                PrimOp::Threads { arms, .. } => Some(arms),
                _ => None,
            })
            .expect("threads op");
        assert_eq!(team.len(), 3);
        // Each thread's compute reflects its tid.
        for (t, arm) in team.iter().enumerate() {
            let cost = arm
                .iter()
                .find_map(|o| match o {
                    PrimOp::Compute { seconds, .. } => Some(*seconds),
                    _ => None,
                })
                .unwrap();
            assert_eq!(cost, 1.0 + t as f64);
        }
    }

    #[test]
    fn mpi_inside_threads_rejected() {
        let mut p = Program::new("t");
        p.body = Step::ParallelRegion {
            name: "R".into(),
            threads: Some(parse_expression("2").unwrap()),
            body: Box::new(Step::Mpi {
                name: "bar".into(),
                op: MpiOp::Barrier,
            }),
        };
        let err = flatten_for_process(&p, &machine(2), 0, Default::default()).unwrap_err();
        assert!(
            matches!(&err, FlattenError::MpiInThread { element } if element == "bar"),
            "{err}"
        );
        assert!(err.to_string().contains("MPI_THREAD_FUNNELED"), "{err}");
    }

    #[test]
    fn negative_cost_rejected() {
        let mut p = Program::new("t");
        p.body = exec("A", "-1");
        let err = flatten_for_process(&p, &machine(1), 0, Default::default()).unwrap_err();
        assert!(
            matches!(&err, FlattenError::InvalidTime { value, .. } if *value == -1.0),
            "{err}"
        );
        assert!(err.to_string().contains("invalid time"), "{err}");
    }
}
