//! Batch analytic evaluation: prepare once, evaluate many SP points.
//!
//! [`crate::analytic::evaluate_ops`] re-walks the full `Arc<[PrimOp]>`
//! structure per SP point: every evaluation re-skips the trace markers,
//! re-hashes `(src, dst, tag)` channel keys into a fresh `HashMap` of
//! `VecDeque`s, re-prices every Hockney transfer and re-schedules every
//! thread team — even though all of that is a pure function of the
//! elaboration and the machine model, which the sweep holds fixed per
//! elaboration-cache entry. During a sweep the same op lists are walked
//! once per point, so the redundant work dominates the hot loop.
//!
//! [`BatchProgram::prepare`] hoists everything scenario-invariant out of
//! the per-point walk, compiling the op lists into a structure-of-arrays
//! form the critical-path pass can replay with no allocation and no
//! hashing:
//!
//! * **trace markers and master-flow locks are dropped** — they are
//!   no-ops in the analytic pass, and they are the *majority* of ops in
//!   elaborated models (every element contributes an `Enter`/`Exit`
//!   pair),
//! * **sends and receives are matched statically** — FIFO matching per
//!   `(src, dst, tag)` is order-deterministic: the k-th receive on a
//!   channel always pairs with the k-th send, because both sides post in
//!   program order. Each send gets a dense slot index; each receive
//!   stores its partner's slot, so the per-point replay is an array read
//!   instead of a `HashMap` + `VecDeque` pop,
//! * **costs are resolved to one `f64` per op** — Hockney transfer
//!   times, send overheads and thread-team completion times (the full
//!   FCFS lock schedule) are priced at prepare time,
//! * **scratch is reused across points** — [`BatchScratch`] holds the
//!   per-rank clocks/cursors and the send-timestamp arena; a sweep
//!   worker clears it per point instead of reallocating.
//!
//! The replay is the *same* round-robin critical-path pass as the
//! per-point oracle, performing the identical floating-point operations
//! in the identical order, so predictions are **bit-identical** to
//! [`crate::analytic::evaluate_ops`] — pinned by unit tests here, the
//! conformance suite, and the batch-vs-single differential proptest in
//! `tests/conformance.rs`. Deadlocks are reported with the exact same
//! [`SimError::Deadlock`] shape (the compact ops remember their source
//! op index for the message).
//!
//! Preparation itself can fail where the oracle would not have — e.g. a
//! thread team holding a communication op errors at prepare time but
//! only errors per-point if the replay *reaches* it (the model might
//! deadlock first). [`prepare`](BatchProgram::prepare) failures are
//! therefore never surfaced: callers
//! ([`ElaborationCache::get_or_flatten_batched`](crate::elab::ElaborationCache::get_or_flatten_batched))
//! fall back to the per-point oracle, keeping observable behavior
//! identical in every case.

use crate::elab::RankOps;
use crate::estimator::{EstimatorError, Evaluation};
use crate::flatten::PrimOp;
use prophet_machine::MachineModel;
use prophet_sim::{SimError, SimReport};
use prophet_trace::TraceFile;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::ops::Range;

/// One compact analytic op. The meaning of `arg`/`val` depends on the
/// kind; see [`Kind`].
#[derive(Debug, Clone, Copy)]
enum Kind {
    /// Advance the rank clock by `val` (compute, wait, or a whole
    /// thread team priced by the FCFS schedule at prepare time).
    Add,
    /// Post send slot `arg` at the current clock; no sender cost
    /// (zero-byte control message, or `send_overhead == 0`).
    Post,
    /// Post send slot `arg`, then advance the clock by `val` (the
    /// sender-side overhead of a data message).
    PostPay,
    /// Complete at `max(clock, send_time[arg] + val)` — `val` is the
    /// Hockney transfer time priced at prepare time.
    Recv,
    /// Complete at `max(clock, send_time[arg])` exactly — a zero-byte
    /// message adds no transfer term (and no `+ 0.0`, which could
    /// perturb the bit pattern).
    RecvZero,
    /// A receive with no matching send anywhere in the elaboration:
    /// blocks forever (the deadlock is reported like the oracle's).
    RecvNever,
}

/// Sentinel for "send not posted yet" in the scratch arena.
const UNPOSTED: f64 = f64::NAN;

/// One elaboration compiled for batch evaluation: the scenario-invariant
/// half of the analytic critical-path pass, resolved once per
/// `(elaboration, machine)` pair and replayed per SP point.
///
/// Built by [`BatchProgram::prepare`]; cached per elaboration-cache
/// entry by
/// [`ElaborationCache::get_or_flatten_batched`](crate::elab::ElaborationCache::get_or_flatten_batched).
#[derive(Debug)]
pub struct BatchProgram {
    /// Structure-of-arrays over compact ops, all ranks concatenated.
    kinds: Vec<Kind>,
    /// Send-slot index (`Post*`/`Recv*`); unused for `Add`.
    args: Vec<u32>,
    /// Pre-priced cost; meaning depends on the kind.
    vals: Vec<f64>,
    /// Index of the originating op in its rank's source list — only
    /// read to format deadlock reports from the original `PrimOp`.
    orig: Vec<u32>,
    /// Per-rank compact op range into the arrays above.
    ranks: Vec<Range<u32>>,
    /// Total send slots (sizes the scratch arena).
    sends: usize,
    /// The source elaboration (deadlock formatting only).
    ops: RankOps,
}

/// Reusable per-worker scratch for [`BatchProgram::evaluate`]: the
/// mutable state of one replay, cleared (not reallocated) per point.
#[derive(Debug, Default)]
pub struct BatchScratch {
    /// Per-rank cursor into the compact op arrays.
    ip: Vec<u32>,
    /// Per-rank clock.
    time: Vec<f64>,
    /// Post time per send slot ([`UNPOSTED`] until the sender reaches
    /// it) — the arena replacing the oracle's channel map.
    send_time: Vec<f64>,
}

impl BatchScratch {
    /// An empty scratch; grows to fit the first program it replays.
    pub fn new() -> Self {
        Self::default()
    }
}

impl BatchProgram {
    /// Compile `rank_ops` + `machine` into batch form.
    ///
    /// # Errors
    /// Anything the per-point pass could raise while pricing
    /// (communication inside a thread team, invalid team shapes), plus
    /// elaborations too large for the compact `u32` indices. Callers
    /// treat any error as "use the per-point oracle for this entry".
    pub fn prepare(rank_ops: &RankOps, machine: &MachineModel) -> Result<Self, EstimatorError> {
        let total_ops: usize = rank_ops.iter().map(|r| r.len()).sum();
        let total_sends: usize = rank_ops
            .iter()
            .map(|r| {
                r.iter()
                    .filter(|op| matches!(op, PrimOp::SendTo { .. }))
                    .count()
            })
            .sum();
        if total_ops > u32::MAX as usize || rank_ops.len() > u32::MAX as usize {
            return Err(EstimatorError::Mismatch(
                "elaboration too large for batch compilation".into(),
            ));
        }

        // Pass 1 — static FIFO matching: assign each send a dense slot
        // in (rank, program-order) and queue it on its channel; the
        // replay posts sends in exactly this order, so the k-th pop in
        // pass 2 is the send the oracle's k-th pop would match.
        let mut channels: HashMap<(usize, usize, i64), VecDeque<(u32, u64)>> = HashMap::new();
        let mut slot = 0u32;
        for (pid, ops) in rank_ops.iter().enumerate() {
            for op in ops.iter() {
                if let PrimOp::SendTo {
                    dest, bytes, tag, ..
                } = op
                {
                    channels
                        .entry((pid, *dest, *tag))
                        .or_default()
                        .push_back((slot, *bytes));
                    slot += 1;
                }
            }
        }
        debug_assert_eq!(slot as usize, total_sends);

        // Pass 2 — compact each rank, dropping analytic no-ops and
        // pricing everything scenario-invariant.
        let mut kinds = Vec::with_capacity(total_ops);
        let mut args = Vec::with_capacity(total_ops);
        let mut vals = Vec::with_capacity(total_ops);
        let mut orig = Vec::with_capacity(total_ops);
        let mut ranks = Vec::with_capacity(rank_ops.len());
        let overhead = machine.comm.params.send_overhead;
        let mut next_slot = 0u32;
        for (pid, ops) in rank_ops.iter().enumerate() {
            let start = kinds.len() as u32;
            for (at, op) in ops.iter().enumerate() {
                let (kind, arg, val) = match op {
                    PrimOp::Enter(_) | PrimOp::Exit(_) => continue,
                    PrimOp::Lock(_) | PrimOp::Unlock(_) => continue,
                    PrimOp::Compute { seconds, .. } | PrimOp::Wait { seconds, .. } => {
                        (Kind::Add, 0, *seconds)
                    }
                    PrimOp::SendTo { bytes, .. } => {
                        let s = next_slot;
                        next_slot += 1;
                        if *bytes > 0 && overhead > 0.0 {
                            (Kind::PostPay, s, overhead)
                        } else {
                            (Kind::Post, s, 0.0)
                        }
                    }
                    PrimOp::RecvFrom { src, tag, .. } => {
                        match channels
                            .get_mut(&(*src, pid, *tag))
                            .and_then(VecDeque::pop_front)
                        {
                            Some((s, bytes)) if bytes > 0 => {
                                // The transfer is priced from the *sender's*
                                // size, as the oracle prices it.
                                (Kind::Recv, s, machine.comm.ptp_time(*src, pid, bytes))
                            }
                            Some((s, _)) => (Kind::RecvZero, s, 0.0),
                            None => (Kind::RecvNever, 0, 0.0),
                        }
                    }
                    PrimOp::Threads { arms, .. } => (
                        Kind::Add,
                        0,
                        crate::analytic::team_time(arms, machine.sp.cpus_per_node)?,
                    ),
                };
                kinds.push(kind);
                args.push(arg);
                vals.push(val);
                orig.push(at as u32);
            }
            ranks.push(start..kinds.len() as u32);
        }

        Ok(Self {
            kinds,
            args,
            vals,
            orig,
            ranks,
            sends: total_sends,
            ops: rank_ops.clone(),
        })
    }

    /// Replay one point: the same round-robin critical-path pass as
    /// [`crate::analytic::evaluate_ops`], bit-identical by construction.
    ///
    /// # Errors
    /// [`EstimatorError::Sim`] with the oracle's deadlock shape when the
    /// send/recv dependency graph has a cycle or an unmatched receive.
    pub fn evaluate(
        &self,
        name: &str,
        scratch: &mut BatchScratch,
    ) -> Result<Evaluation, EstimatorError> {
        let n = self.ranks.len();
        scratch.ip.clear();
        scratch.ip.extend(self.ranks.iter().map(|r| r.start));
        scratch.time.clear();
        scratch.time.resize(n, 0.0);
        scratch.send_time.clear();
        scratch.send_time.resize(self.sends, UNPOSTED);

        loop {
            let mut progressed = false;
            for pid in 0..n {
                progressed |= self.advance(pid, scratch);
            }
            if scratch
                .ip
                .iter()
                .zip(&self.ranks)
                .all(|(&ip, range)| ip >= range.end)
            {
                break;
            }
            if !progressed {
                return Err(EstimatorError::Sim(self.deadlock(scratch)));
            }
        }

        let end_time = scratch.time.iter().copied().fold(0.0, f64::max);
        Ok(Evaluation {
            predicted_time: end_time,
            report: SimReport {
                end_time,
                events_processed: 0,
                processes_completed: n,
                processes_spawned: n,
                facilities: Vec::new(),
                hit_time_limit: false,
            },
            trace: TraceFile::new(name.to_string(), n),
        })
    }

    /// Advance rank `pid` until it completes or blocks on an unposted
    /// send. Returns whether any op was resolved.
    fn advance(&self, pid: usize, scratch: &mut BatchScratch) -> bool {
        let end = self.ranks[pid].end;
        let mut ip = scratch.ip[pid];
        let mut t = scratch.time[pid];
        let mut progressed = false;
        while ip < end {
            let i = ip as usize;
            match self.kinds[i] {
                Kind::Add => t += self.vals[i],
                Kind::Post => scratch.send_time[self.args[i] as usize] = t,
                Kind::PostPay => {
                    scratch.send_time[self.args[i] as usize] = t;
                    t += self.vals[i];
                }
                Kind::Recv => {
                    let sent_at = scratch.send_time[self.args[i] as usize];
                    if sent_at.is_nan() {
                        break; // blocked: matching send not posted yet
                    }
                    t = t.max(sent_at + self.vals[i]);
                }
                Kind::RecvZero => {
                    let sent_at = scratch.send_time[self.args[i] as usize];
                    if sent_at.is_nan() {
                        break;
                    }
                    t = t.max(sent_at);
                }
                Kind::RecvNever => break,
            }
            ip += 1;
            progressed = true;
        }
        scratch.ip[pid] = ip;
        scratch.time[pid] = t;
        progressed
    }

    /// Shape the stall exactly like the oracle's deadlock report: the
    /// blocked compact op maps back to its source `PrimOp`.
    fn deadlock(&self, scratch: &BatchScratch) -> SimError {
        let blocked: Vec<String> = self
            .ranks
            .iter()
            .zip(&scratch.ip)
            .enumerate()
            .filter(|(_, (range, &ip))| ip < range.end)
            .map(
                |(pid, (_, &ip))| match &self.ops[pid][self.orig[ip as usize] as usize] {
                    PrimOp::RecvFrom { src, tag, .. } => {
                        format!("rank{pid} waiting for message from rank {src} (tag {tag})")
                    }
                    other => format!("rank{pid} stuck at {other:?}"),
                },
            )
            .collect();
        let at = scratch.time.iter().copied().fold(0.0, f64::max);
        SimError::Deadlock {
            blocked,
            at: format!("{at:.6}"),
        }
    }
}

// Batch programs are cached inside the elaboration cache's lock-free
// nodes and shared by reference across sweep workers.
const _: () = {
    const fn thread_safe<T: Send + Sync>() {}
    thread_safe::<BatchProgram>();
    thread_safe::<BatchScratch>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elab::flatten_all;
    use crate::estimator::EstimatorOptions;
    use crate::program::{MpiOp, Program, Step};
    use prophet_expr::parse_expression;
    use prophet_machine::{CommParams, MachineModel, SystemParams};

    fn machine(nodes: usize, cpn: usize) -> MachineModel {
        MachineModel::new(SystemParams::flat_mpi(nodes, cpn), CommParams::default()).unwrap()
    }

    fn exec(name: &str, cost: &str) -> Step {
        Step::Exec {
            name: name.into(),
            cost: Some(parse_expression(cost).unwrap()),
            code: vec![],
        }
    }

    /// Assert batch and per-point agree bit-for-bit on `p` × `m`.
    fn assert_bit_identical(p: &Program, m: &MachineModel) {
        let ops = flatten_all(p, m, Default::default()).unwrap();
        let oracle =
            crate::analytic::evaluate_ops(&p.name, &ops, m, &EstimatorOptions::default()).unwrap();
        let batch = BatchProgram::prepare(&ops, m).unwrap();
        let mut scratch = BatchScratch::new();
        let got = batch.evaluate(&p.name, &mut scratch).unwrap();
        assert_eq!(
            got.predicted_time.to_bits(),
            oracle.predicted_time.to_bits(),
            "batch {} vs oracle {}",
            got.predicted_time,
            oracle.predicted_time
        );
        assert_eq!(
            got.report.end_time.to_bits(),
            oracle.report.end_time.to_bits()
        );
        assert_eq!(
            got.report.processes_completed,
            oracle.report.processes_completed
        );
        assert!(got.trace.is_empty());
    }

    fn ping_pong(bytes: &str) -> Program {
        let mut p = Program::new("pp");
        p.body = Step::Branch(vec![
            (
                Some(parse_expression("pid == 0").unwrap()),
                Step::Mpi {
                    name: "s".into(),
                    op: MpiOp::Send {
                        dest: parse_expression("1").unwrap(),
                        size: parse_expression(bytes).unwrap(),
                        tag: 0,
                    },
                },
            ),
            (
                None,
                Step::Mpi {
                    name: "r".into(),
                    op: MpiOp::Recv {
                        src: parse_expression("0").unwrap(),
                        tag: 0,
                    },
                },
            ),
        ]);
        p
    }

    #[test]
    fn sequential_model_is_bit_identical() {
        let mut p = Program::new("seq");
        p.body = Step::Seq(vec![exec("A", "1.5"), exec("B", "2.5 + 0.125 * pid")]);
        assert_bit_identical(&p, &machine(4, 1));
    }

    #[test]
    fn message_passing_is_bit_identical() {
        assert_bit_identical(&ping_pong("1000000"), &machine(2, 1));
    }

    #[test]
    fn zero_byte_messages_are_bit_identical() {
        // A zero-size send must complete the receive at exactly
        // `sent_at` — `sent_at + 0.0` would still be bit-equal, but the
        // kind split keeps the operation sequences literally identical.
        assert_bit_identical(&ping_pong("0"), &machine(2, 1));
    }

    #[test]
    fn collectives_are_bit_identical() {
        let mut p = Program::new("bar");
        p.body = Step::Seq(vec![
            exec("W", "0.5 + 0.25 * pid"),
            Step::Mpi {
                name: "b".into(),
                op: MpiOp::Barrier,
            },
            exec("tail", "1"),
        ]);
        for nodes in [2, 4, 8] {
            assert_bit_identical(&p, &machine(nodes, 1));
        }
    }

    #[test]
    fn thread_teams_are_bit_identical() {
        let mut p = Program::new("omp");
        p.body = Step::ParallelRegion {
            name: "R".into(),
            threads: Some(parse_expression("4").unwrap()),
            body: Box::new(Step::Seq(vec![
                exec("Par", "1"),
                Step::Critical {
                    name: "Crit".into(),
                    lock: "<global>".into(),
                    body: Box::new(exec("Locked", "1")),
                },
            ])),
        };
        let m = MachineModel::new(
            SystemParams {
                nodes: 1,
                cpus_per_node: 4,
                processes: 1,
                threads_per_process: 4,
            },
            CommParams::default(),
        )
        .unwrap();
        assert_bit_identical(&p, &m);
    }

    #[test]
    fn scratch_reuse_across_points_stays_identical() {
        // One scratch across a whole grid — stale state from a larger
        // point must never leak into a smaller one.
        let mut p = Program::new("grid");
        p.body = Step::Seq(vec![
            exec("W", "1 + pid"),
            Step::Mpi {
                name: "b".into(),
                op: MpiOp::Barrier,
            },
        ]);
        let mut scratch = BatchScratch::new();
        for nodes in [8, 2, 4, 1, 8, 3] {
            let m = machine(nodes, 1);
            let ops = flatten_all(&p, &m, Default::default()).unwrap();
            let oracle =
                crate::analytic::evaluate_ops(&p.name, &ops, &m, &EstimatorOptions::default())
                    .unwrap();
            let batch = BatchProgram::prepare(&ops, &m).unwrap();
            let got = batch.evaluate(&p.name, &mut scratch).unwrap();
            assert_eq!(
                got.predicted_time.to_bits(),
                oracle.predicted_time.to_bits(),
                "nodes={nodes}"
            );
        }
    }

    #[test]
    fn deadlock_report_matches_the_oracle() {
        let mut p = Program::new("stuck");
        p.body = Step::Branch(vec![(
            Some(parse_expression("pid == 0").unwrap()),
            Step::Mpi {
                name: "r".into(),
                op: MpiOp::Recv {
                    src: parse_expression("1").unwrap(),
                    tag: 0,
                },
            },
        )]);
        let m = machine(2, 1);
        let ops = flatten_all(&p, &m, Default::default()).unwrap();
        let oracle = crate::analytic::evaluate_ops(&p.name, &ops, &m, &EstimatorOptions::default())
            .unwrap_err();
        let batch = BatchProgram::prepare(&ops, &m).unwrap();
        let got = batch
            .evaluate(&p.name, &mut BatchScratch::new())
            .unwrap_err();
        assert_eq!(format!("{got}"), format!("{oracle}"));
    }

    #[test]
    fn compaction_drops_markers_and_locks() {
        let mut p = Program::new("markers");
        p.body = Step::Seq(vec![exec("A", "1"), exec("B", "2")]);
        let m = machine(1, 1);
        let ops = flatten_all(&p, &m, Default::default()).unwrap();
        let source_ops: usize = ops.iter().map(|r| r.len()).sum();
        let batch = BatchProgram::prepare(&ops, &m).unwrap();
        assert!(
            batch.kinds.len() < source_ops,
            "{} compact vs {source_ops} source ops",
            batch.kinds.len()
        );
        assert!(batch.kinds.iter().all(|k| matches!(k, Kind::Add)));
    }

    #[test]
    fn comm_inside_a_team_fails_prepare() {
        // The oracle only errors if the replay *reaches* the bad op;
        // prepare prices all teams eagerly and must surface the error so
        // callers fall back to the oracle.
        use crate::flatten::PrimOp;
        let m = machine(2, 1);
        let bad: RankOps = vec![
            vec![PrimOp::Threads {
                element: "T".into(),
                arms: vec![vec![PrimOp::SendTo {
                    element: "s".into(),
                    dest: 1,
                    bytes: 8,
                    tag: 0,
                }]],
            }]
            .into(),
            vec![].into(),
        ]
        .into();
        assert!(BatchProgram::prepare(&bad, &m).is_err());
    }
}
