//! The estimator driver: integrate program and machine models, simulate,
//! and report.

use crate::elab::{flatten_all, ElaborationCache, RankOps};
use crate::flatten::{FlattenError, FlattenLimits};
use crate::interp::OpProcess;
use crate::program::Program;
use prophet_machine::MachineModel;
use prophet_sim::{CalendarKind, Config, SimError, SimReport, Simulator};
use prophet_trace::TraceFile;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Which evaluation engine answers a scenario.
///
/// Both backends consume the same flattened primitive-op lists produced
/// from one [`Program`]; they are differentially tested against each
/// other (`tests/conformance.rs`). See [`crate::analytic`] for the
/// agreement contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Discrete-event simulation on the CSIM-substitute kernel: models
    /// CPU contention through FCFS facilities and records a trace file.
    #[default]
    Simulation,
    /// Closed-form analytic evaluation: no DES kernel, no trace, orders
    /// of magnitude faster for sweeps (see `bench_analytic`).
    Analytic,
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backend::Simulation => write!(f, "simulation"),
            Backend::Analytic => write!(f, "analytic"),
        }
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "simulation" | "sim" => Ok(Backend::Simulation),
            "analytic" => Ok(Backend::Analytic),
            other => Err(format!(
                "unknown backend `{other}`; expected `simulation` or `analytic`"
            )),
        }
    }
}

/// Options for one evaluation run.
#[derive(Debug, Clone)]
pub struct EstimatorOptions {
    /// Master seed for the simulation's random streams.
    pub seed: u64,
    /// Whether to record a trace file (TF). Disable for large sweeps.
    pub trace: bool,
    /// Elaboration limits.
    pub limits: FlattenLimits,
    /// Optional simulated-time cutoff.
    pub until: Option<f64>,
    /// Calendar implementation (ablation A3).
    pub calendar: CalendarKind,
}

impl Default for EstimatorOptions {
    fn default() -> Self {
        Self {
            seed: 0x5EED,
            trace: true,
            limits: FlattenLimits::default(),
            until: None,
            calendar: CalendarKind::BinaryHeap,
        }
    }
}

/// Evaluation failure.
#[derive(Debug, Clone)]
pub enum EstimatorError {
    /// Model elaboration failed (bad expression, rank out of range, …).
    Flatten(FlattenError),
    /// The simulation failed (deadlock, event limit, model error).
    Sim(SimError),
    /// A rank detected a communication mismatch during the run.
    Mismatch(String),
}

impl fmt::Display for EstimatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Flatten/Sim details live one level down the `source()`
            // chain (`render_chain` prints them); repeating them here
            // would duplicate every message in chained renderings.
            EstimatorError::Flatten(_) => write!(f, "model elaboration failed"),
            EstimatorError::Sim(_) => write!(f, "evaluation failed"),
            EstimatorError::Mismatch(m) => write!(f, "communication mismatch: {m}"),
        }
    }
}

impl std::error::Error for EstimatorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EstimatorError::Flatten(e) => Some(e),
            EstimatorError::Sim(e) => Some(e),
            EstimatorError::Mismatch(_) => None,
        }
    }
}

impl From<FlattenError> for EstimatorError {
    fn from(e: FlattenError) -> Self {
        EstimatorError::Flatten(e)
    }
}

impl From<SimError> for EstimatorError {
    fn from(e: SimError) -> Self {
        EstimatorError::Sim(e)
    }
}

/// The result of evaluating a program model on a machine model.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Predicted wall-clock execution time of the modeled program.
    pub predicted_time: f64,
    /// Kernel-level report (facility utilizations, event counts).
    pub report: SimReport,
    /// The trace file (empty if tracing was disabled).
    pub trace: TraceFile,
}

/// The Performance Estimator.
pub struct Estimator {
    /// The machine model in effect.
    pub machine: MachineModel,
    /// Run options.
    pub options: EstimatorOptions,
}

impl Estimator {
    /// Create an estimator for a machine.
    pub fn new(machine: MachineModel, options: EstimatorOptions) -> Self {
        Self { machine, options }
    }

    /// Evaluate `program` on the configured machine.
    pub fn evaluate(&self, program: &Program) -> Result<Evaluation, EstimatorError> {
        Self::run(program, &self.machine, &self.options)
    }

    /// Evaluate `program` on `machine` with the selected `backend`.
    ///
    /// [`Backend::Simulation`] delegates to [`Estimator::run`];
    /// [`Backend::Analytic`] resolves the same op lists in closed form
    /// ([`crate::analytic::evaluate_analytic`]) without touching the DES
    /// kernel.
    pub fn run_backend(
        backend: Backend,
        program: &Program,
        machine: &MachineModel,
        options: &EstimatorOptions,
    ) -> Result<Evaluation, EstimatorError> {
        Self::run_backend_cached(backend, program, machine, options, None)
    }

    /// [`Estimator::run_backend`] with a shared [`ElaborationCache`]:
    /// the per-rank op lists come from the cache (flattened at most once
    /// per distinct `(SP, comm, limits)` key, shared across threads,
    /// seeds and backends) instead of being rebuilt per evaluation.
    ///
    /// The cache must be dedicated to this `program` — `Session` owns
    /// one per compiled model; pass `None` to elaborate uncached.
    pub fn run_backend_cached(
        backend: Backend,
        program: &Program,
        machine: &MachineModel,
        options: &EstimatorOptions,
        cache: Option<&ElaborationCache>,
    ) -> Result<Evaluation, EstimatorError> {
        let rank_ops = match cache {
            Some(cache) => cache.get_or_flatten(program, machine, options.limits)?,
            None => flatten_all(program, machine, options.limits)?,
        };
        match backend {
            Backend::Simulation => Self::run_ops(&program.name, &rank_ops, machine, options),
            Backend::Analytic => {
                crate::analytic::evaluate_ops(&program.name, &rank_ops, machine, options)
            }
        }
    }

    /// Analytic evaluation through the batch path: the cache entry's
    /// [`BatchProgram`](crate::batch::BatchProgram) replays into
    /// `scratch` (no per-point allocation), falling back to the
    /// per-point oracle for entries that could not be batch-compiled or
    /// that bypassed the cache. Predictions are bit-identical to
    /// [`Estimator::run_backend_cached`] with [`Backend::Analytic`]
    /// either way — this is strictly a throughput path for sweeps
    /// (`prophet_core::Session::sweep` dispatches analytic chunks here).
    ///
    /// # Errors
    /// As [`Estimator::run_backend_cached`].
    pub fn run_analytic_batched(
        program: &Program,
        machine: &MachineModel,
        options: &EstimatorOptions,
        cache: &ElaborationCache,
        scratch: &mut crate::batch::BatchScratch,
    ) -> Result<Evaluation, EstimatorError> {
        let (rank_ops, batch) = cache.get_or_flatten_batched(program, machine, options.limits)?;
        match batch {
            Some(batch) => batch.evaluate(&program.name, scratch),
            None => crate::analytic::evaluate_ops(&program.name, &rank_ops, machine, options),
        }
    }

    /// Evaluate `program` on `machine` with `options` by simulation,
    /// borrowing all three.
    ///
    /// This is the reusable hot path behind compile-once sessions: one
    /// immutable `Program` and one `EstimatorOptions` can serve any
    /// number of evaluations (and any number of threads) without being
    /// cloned or consumed. [`Estimator::evaluate`] delegates here.
    pub fn run(
        program: &Program,
        machine: &MachineModel,
        options: &EstimatorOptions,
    ) -> Result<Evaluation, EstimatorError> {
        let rank_ops = flatten_all(program, machine, options.limits)?;
        Self::run_ops(&program.name, &rank_ops, machine, options)
    }

    /// Replay already-elaborated op lists on the DES kernel.
    ///
    /// The scenario-dependent half of [`Estimator::run`]: `rank_ops` is
    /// the scenario-independent elaboration (from [`flatten_all`] or an
    /// [`ElaborationCache`]), shared by reference — evaluations never
    /// clone or consume the op lists.
    pub fn run_ops(
        name: &str,
        rank_ops: &RankOps,
        machine: &MachineModel,
        options: &EstimatorOptions,
    ) -> Result<Evaluation, EstimatorError> {
        let sp = machine.sp;
        debug_assert_eq!(rank_ops.len(), sp.processes, "elaboration/machine mismatch");

        // Integrate with the machine model in a fresh simulator.
        let mut sim = Simulator::new(Config {
            seed: options.seed,
            until: options.until,
            calendar: options.calendar,
            ..Default::default()
        });
        let layout = machine.instantiate(&mut sim);
        let mailboxes = Rc::new(layout.proc_mailboxes.clone());
        let trace_sink = if options.trace {
            Some(Rc::new(RefCell::new(TraceFile::new(
                name.to_string(),
                sp.processes,
            ))))
        } else {
            None
        };
        let error = Rc::new(RefCell::new(None));

        for (pid, ops) in rank_ops.iter().enumerate() {
            // One 1-server facility per `<<critical+>>` lock of this rank.
            let locks: Vec<_> = (0..crate::flatten::lock_count(ops))
                .map(|l| {
                    sim.add_facility(
                        &format!("rank{pid}.lock{l}"),
                        1,
                        prophet_sim::Discipline::Fcfs,
                    )
                })
                .collect();
            let proc = OpProcess::master(
                pid,
                std::sync::Arc::clone(ops),
                machine.cpu_facility_of(&layout, pid),
                Rc::clone(&mailboxes),
                machine.comm,
                trace_sink.clone(),
                Rc::new(locks),
                Rc::clone(&error),
            );
            sim.spawn(&format!("rank{pid}"), Box::new(proc));
        }

        // Run.
        let report = sim.run()?;
        if let Some(msg) = error.borrow_mut().take() {
            return Err(EstimatorError::Mismatch(msg));
        }

        let trace = match trace_sink {
            Some(sink) => {
                let mut tf = Rc::try_unwrap(sink)
                    .expect("all trace holders dropped after run")
                    .into_inner();
                tf.end_time = tf.end_time.max(report.end_time);
                tf
            }
            None => TraceFile::new(name.to_string(), sp.processes),
        };

        Ok(Evaluation {
            predicted_time: report.end_time,
            report,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{MpiOp, Program, Step};
    use prophet_expr::{parse_expression, parse_statements};
    use prophet_machine::{CommParams, SystemParams};
    use prophet_trace::TraceAnalysis;

    fn machine(nodes: usize, cpn: usize) -> MachineModel {
        MachineModel::new(SystemParams::flat_mpi(nodes, cpn), CommParams::default()).unwrap()
    }

    fn exec(name: &str, cost: &str) -> Step {
        Step::Exec {
            name: name.into(),
            cost: Some(parse_expression(cost).unwrap()),
            code: vec![],
        }
    }

    fn eval(program: &Program, m: MachineModel) -> Evaluation {
        Estimator::new(m, EstimatorOptions::default())
            .evaluate(program)
            .unwrap()
    }

    #[test]
    fn sequential_costs_sum() {
        let mut p = Program::new("seq");
        p.body = Step::Seq(vec![exec("A", "1.5"), exec("B", "2.5")]);
        let e = eval(&p, machine(1, 1));
        assert_eq!(e.predicted_time, 4.0);
        assert_eq!(e.trace.len(), 4); // enter/exit markers for A and B
    }

    #[test]
    fn spmd_ranks_run_concurrently() {
        // Each of 4 ranks computes 2s on its own cpu: total 2s, not 8s.
        let mut p = Program::new("spmd");
        p.body = exec("W", "2");
        let e = eval(&p, machine(4, 1));
        assert_eq!(e.predicted_time, 2.0);
        assert_eq!(e.report.processes_completed, 4);
    }

    #[test]
    fn figure7_branch_follows_code_fragment() {
        // A1 sets GV=1 → SA (SA1, SA2) runs, A2 does not; then A4.
        let mut p = Program::new("sample");
        p.globals.push(("GV".into(), 0.0));
        p.body = Step::Seq(vec![
            Step::Exec {
                name: "A1".into(),
                cost: Some(parse_expression("1").unwrap()),
                code: parse_statements("GV = 1;").unwrap(),
            },
            Step::Branch(vec![
                (
                    Some(parse_expression("GV == 1").unwrap()),
                    Step::Composite {
                        name: "SA".into(),
                        body: Box::new(Step::Seq(vec![exec("SA1", "2"), exec("SA2", "3")])),
                    },
                ),
                (None, exec("A2", "10")),
            ]),
            exec("A4", "1"),
        ]);
        let e = eval(&p, machine(1, 1));
        assert_eq!(e.predicted_time, 7.0); // 1 + 2 + 3 + 1
        let a = TraceAnalysis::analyze(&e.trace);
        assert!(a.element("SA1").is_some());
        assert!(a.element("A2").is_none(), "A2 must not run");
    }

    #[test]
    fn ping_pong_includes_transfer_time() {
        let m = machine(2, 1);
        let bytes = 1_000_000u64;
        let transfer = m.comm.ptp_time(0, 1, bytes);
        let mut p = Program::new("pp");
        p.body = Step::Branch(vec![
            (
                Some(parse_expression("pid == 0").unwrap()),
                Step::Mpi {
                    name: "s".into(),
                    op: MpiOp::Send {
                        dest: parse_expression("1").unwrap(),
                        size: parse_expression("1000000").unwrap(),
                        tag: 0,
                    },
                },
            ),
            (
                None,
                Step::Mpi {
                    name: "r".into(),
                    op: MpiOp::Recv {
                        src: parse_expression("0").unwrap(),
                        tag: 0,
                    },
                },
            ),
        ]);
        let e = eval(&p, m);
        assert!(
            (e.predicted_time - transfer).abs() < 1e-6,
            "predicted {} vs transfer {transfer}",
            e.predicted_time
        );
    }

    #[test]
    fn barrier_synchronizes_ranks() {
        // Rank 0 computes 5s, rank 1 computes 1s, then both barrier and
        // compute 1s: completion ≈ 6s + ε (not 2s).
        let mut p = Program::new("bar");
        p.body = Step::Seq(vec![
            Step::Branch(vec![
                (
                    Some(parse_expression("pid == 0").unwrap()),
                    exec("slow", "5"),
                ),
                (None, exec("fast", "1")),
            ]),
            Step::Mpi {
                name: "b".into(),
                op: MpiOp::Barrier,
            },
            exec("tail", "1"),
        ]);
        let e = eval(&p, machine(2, 1));
        assert!(e.predicted_time >= 6.0, "{}", e.predicted_time);
        assert!(e.predicted_time < 6.1, "{}", e.predicted_time);
    }

    #[test]
    fn openmp_region_contends_for_cpus() {
        // 4 threads × 1s of work on a node with 2 cpus → ≈ 2s.
        let mut p = Program::new("omp");
        p.body = Step::ParallelRegion {
            name: "R".into(),
            threads: Some(parse_expression("4").unwrap()),
            body: Box::new(exec("W", "1")),
        };
        let m = MachineModel::new(
            SystemParams {
                nodes: 1,
                cpus_per_node: 2,
                processes: 1,
                threads_per_process: 4,
            },
            CommParams::default(),
        )
        .unwrap();
        let e = eval(&p, m);
        assert_eq!(e.predicted_time, 2.0);
    }

    #[test]
    fn openmp_speedup_with_more_cpus() {
        let region = |threads: &str| Step::ParallelRegion {
            name: "R".into(),
            threads: Some(parse_expression(threads).unwrap()),
            body: Box::new(exec("W", "8 / threads")),
        };
        let time = |cpus: usize, threads: usize| {
            let mut p = Program::new("omp");
            p.body = region(&threads.to_string());
            let m = MachineModel::new(
                SystemParams {
                    nodes: 1,
                    cpus_per_node: cpus,
                    processes: 1,
                    threads_per_process: threads,
                },
                CommParams::default(),
            )
            .unwrap();
            eval(&p, m).predicted_time
        };
        // Perfectly divisible work: 8s serial.
        let t1 = time(1, 1);
        let t4 = time(4, 4);
        let t8 = time(8, 8);
        assert_eq!(t1, 8.0);
        assert_eq!(t4, 2.0);
        assert_eq!(t8, 1.0);
    }

    #[test]
    fn fork_join_arms_concurrent() {
        let mut p = Program::new("fj");
        p.body = Step::Parallel(vec![exec("X", "2"), exec("Y", "3")]);
        let m = MachineModel::new(
            SystemParams {
                nodes: 1,
                cpus_per_node: 2,
                processes: 1,
                threads_per_process: 2,
            },
            CommParams::default(),
        )
        .unwrap();
        let e = eval(&p, m);
        assert_eq!(e.predicted_time, 3.0); // max(2,3), not 5
    }

    #[test]
    fn loop_repeats_body() {
        let mut p = Program::new("loop");
        p.body = Step::Loop {
            name: "L".into(),
            count: parse_expression("4").unwrap(),
            var: None,
            body: Box::new(exec("S", "0.5")),
        };
        let e = eval(&p, machine(1, 1));
        assert_eq!(e.predicted_time, 2.0);
    }

    #[test]
    fn mismatched_recv_reports_deadlock() {
        // Rank 0 waits for a message that never comes.
        let mut p = Program::new("stuck");
        p.body = Step::Branch(vec![(
            Some(parse_expression("pid == 0").unwrap()),
            Step::Mpi {
                name: "r".into(),
                op: MpiOp::Recv {
                    src: parse_expression("1").unwrap(),
                    tag: 0,
                },
            },
        )]);
        let err = Estimator::new(machine(2, 1), EstimatorOptions::default())
            .evaluate(&p)
            .unwrap_err();
        match err {
            EstimatorError::Sim(SimError::Deadlock { blocked, .. }) => {
                assert!(blocked.iter().any(|b| b.contains("rank0")), "{blocked:?}");
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn trace_disabled_is_empty() {
        let mut p = Program::new("quiet");
        p.body = exec("A", "1");
        let e = Estimator::new(
            machine(1, 1),
            EstimatorOptions {
                trace: false,
                ..Default::default()
            },
        )
        .evaluate(&p)
        .unwrap();
        assert!(e.trace.is_empty());
        assert_eq!(e.predicted_time, 1.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut p = Program::new("det");
        p.body = Step::Seq(vec![
            exec("A", "0.5 + 0.125 * pid"),
            Step::Mpi {
                name: "b".into(),
                op: MpiOp::Barrier,
            },
            exec("B", "1"),
        ]);
        let run = || {
            let e = eval(&p, machine(4, 1));
            (e.predicted_time, e.report.events_processed, e.trace.len())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn critical_section_serializes_threads() {
        // 4 threads, each: 1s parallel work + 1s critical work, on 4 cpus.
        // Parallel part overlaps (1s); critical parts serialize (4s).
        let mut p = Program::new("crit");
        p.body = Step::ParallelRegion {
            name: "R".into(),
            threads: Some(parse_expression("4").unwrap()),
            body: Box::new(Step::Seq(vec![
                exec("Par", "1"),
                Step::Critical {
                    name: "Crit".into(),
                    lock: "<global>".into(),
                    body: Box::new(exec("Locked", "1")),
                },
            ])),
        };
        let m = MachineModel::new(
            SystemParams {
                nodes: 1,
                cpus_per_node: 4,
                processes: 1,
                threads_per_process: 4,
            },
            CommParams::default(),
        )
        .unwrap();
        let e = eval(&p, m);
        assert_eq!(
            e.predicted_time, 5.0,
            "1s parallel + 4×1s serialized critical"
        );
    }

    #[test]
    fn distinct_locks_do_not_exclude() {
        // Two threads in criticals with DIFFERENT locks run concurrently.
        let mut p = Program::new("locks");
        p.body = Step::Parallel(vec![
            Step::Critical {
                name: "C1".into(),
                lock: "a".into(),
                body: Box::new(exec("W1", "2")),
            },
            Step::Critical {
                name: "C2".into(),
                lock: "b".into(),
                body: Box::new(exec("W2", "2")),
            },
        ]);
        let m = MachineModel::new(
            SystemParams {
                nodes: 1,
                cpus_per_node: 2,
                processes: 1,
                threads_per_process: 2,
            },
            CommParams::default(),
        )
        .unwrap();
        let e = eval(&p, m);
        assert_eq!(e.predicted_time, 2.0, "different locks must not serialize");
    }

    #[test]
    fn same_lock_excludes_across_fork_arms() {
        let mut p = Program::new("locks2");
        p.body = Step::Parallel(vec![
            Step::Critical {
                name: "C1".into(),
                lock: "x".into(),
                body: Box::new(exec("W1", "2")),
            },
            Step::Critical {
                name: "C2".into(),
                lock: "x".into(),
                body: Box::new(exec("W2", "2")),
            },
        ]);
        let m = MachineModel::new(
            SystemParams {
                nodes: 1,
                cpus_per_node: 2,
                processes: 1,
                threads_per_process: 2,
            },
            CommParams::default(),
        )
        .unwrap();
        let e = eval(&p, m);
        assert_eq!(e.predicted_time, 4.0, "same lock serializes");
    }

    #[test]
    fn broadcast_cost_scales_with_size() {
        let bcast = |size: &str| {
            let mut p = Program::new("bc");
            p.body = Step::Mpi {
                name: "bc".into(),
                op: MpiOp::Broadcast {
                    root: parse_expression("0").unwrap(),
                    size: parse_expression(size).unwrap(),
                },
            };
            eval(&p, machine(4, 1)).predicted_time
        };
        let small = bcast("1024");
        let large = bcast("1048576");
        assert!(large > small * 10.0, "large {large} vs small {small}");
    }
}
