//! # prophet-estimator
//!
//! The **Performance Estimator** of the Performance Prophet architecture
//! (Pllana et al., ICPP-W 2008, Figure 2): "The Performance Estimator
//! estimates the performance of a parallel and distributed program on a
//! target computer architecture. … The program model is integrated with
//! the machine model to create the model of the whole computer system.
//! The Performance Estimator evaluates the integrated model of computing
//! system and generates the corresponding performance results."
//!
//! * [`program`] — the executable **Program IR**: the machine-efficient
//!   representation the UML model is transformed into (the role the C++
//!   PMP plays in the original; prophet-core lowers the same flow tree to
//!   both),
//! * [`flatten`] — per-process elaboration: walks the IR for each MPI
//!   process, evaluating code fragments, guards, loop counts and cost
//!   functions eagerly, producing a list of primitive timed operations
//!   (compute / send / recv / collective / thread team),
//! * [`elab`] — memoized elaboration: [`elab::ElaborationCache`] interns
//!   the flattened op lists per `(SP, comm, limits)` content key as
//!   shared `Arc<[PrimOp]>` lists, so a sweep over S SP points × R seeds
//!   × both backends flattens S times, not S×R×2 (the sweep hot path
//!   was elaboration-dominated; see `bench_analytic`/`bench_sweep`),
//! * [`interp`] — the simulation process that replays primitive ops on
//!   the CSIM-substitute engine (CPU facilities, mailboxes),
//! * [`analytic`] — the closed-form evaluation backend: the same op
//!   lists resolved by a critical-path pass with no DES kernel (and no
//!   trace) — much faster for sweeps, and an independent oracle for
//!   differential testing,
//! * [`batch`] — the analytic backend's sweep accelerator: one
//!   elaboration compiled into a compact structure-of-arrays replay
//!   (markers dropped, messages matched statically, costs pre-priced)
//!   evaluated per SP point into reusable scratch — bit-identical to
//!   [`analytic`] by construction,
//! * [`estimator`] — the driver: integrate program model + machine model,
//!   run on the selected [`Backend`], produce a
//!   [`prophet_trace::TraceFile`] (TF, simulation only) and an
//!   [`Evaluation`].
//!
//! ## Choosing a backend
//!
//! [`Backend::Simulation`] (the default) models CPU contention through
//! FCFS facilities and records a trace — use it for single detailed
//! predictions and whenever a node is oversubscribed.
//! [`Backend::Analytic`] answers the same question in closed form — use
//! it for large SP sweeps and batches, where it is orders of magnitude
//! faster. The two agree exactly on deterministic communication-free
//! models and within 1e-9 relative on deterministic message-passing
//! models; see the [`analytic`] module docs for the full conformance
//! contract.
//!
//! ## Semantics notes (substitutions documented in DESIGN.md)
//!
//! * Point-to-point messages are *eager*: the sender pays a small CPU
//!   overhead, the receiver completes at
//!   `send_time + α + size·β` (Hockney).
//! * Collectives synchronize all ranks through zero-cost control
//!   messages, then every rank holds the analytic collective time from
//!   the machine model — semantics of a synchronizing collective with
//!   log-tree cost shape.
//! * `<<parallel+>>` regions spawn thread processes on the owning node's
//!   CPU facility; more threads than CPUs queue (real contention).
//! * Model state (globals mutated by code fragments) evolves
//!   deterministically and independently of simulated time, so it is
//!   evaluated eagerly at flatten time; inside thread teams each thread
//!   sees a private copy of the environment.

pub mod analytic;
pub mod batch;
pub mod elab;
pub mod estimator;
pub mod flatten;
pub mod interp;
pub mod program;

pub use analytic::evaluate_analytic;
pub use batch::{BatchProgram, BatchScratch};
pub use elab::{flatten_all, ElabEntry, ElabStats, ElaborationCache, RankOps};
pub use estimator::{Backend, Estimator, EstimatorError, EstimatorOptions, Evaluation};
pub use flatten::{
    flatten_for_process, flatten_invocations, op_digest, FlattenError, FlattenLimits, PrimOp,
};
pub use program::{MpiOp, Program, Step};
