//! The executable Program IR — the machine-efficient model representation.
//!
//! This is the semantic twin of the generated C++ (Figure 8): globals,
//! cost functions, and a structured body of executable elements. It is
//! produced from the UML model by `prophet-core::transform` via the same
//! flow tree that drives C++ emission.

use prophet_expr::{Expr, FunctionDef, Stmt};

/// An MPI communication operation (the profile's message-passing
/// building blocks).
#[derive(Debug, Clone, PartialEq)]
pub enum MpiOp {
    /// Point-to-point send: destination rank and message size (bytes).
    Send {
        /// Destination rank expression (may use `pid`, `P`, …).
        dest: Expr,
        /// Message size in bytes.
        size: Expr,
        /// User tag.
        tag: i64,
    },
    /// Point-to-point receive from a source rank.
    Recv {
        /// Source rank expression.
        src: Expr,
        /// User tag.
        tag: i64,
    },
    /// Broadcast from a root.
    Broadcast {
        /// Root rank expression.
        root: Expr,
        /// Payload size in bytes.
        size: Expr,
    },
    /// Reduce to a root.
    Reduce {
        /// Root rank expression.
        root: Expr,
        /// Payload size in bytes.
        size: Expr,
    },
    /// Allreduce across all ranks.
    Allreduce {
        /// Payload size in bytes.
        size: Expr,
    },
    /// Scatter from a root (total payload size).
    Scatter {
        /// Root rank expression.
        root: Expr,
        /// Total payload size in bytes.
        size: Expr,
    },
    /// Gather to a root (total payload size).
    Gather {
        /// Root rank expression.
        root: Expr,
        /// Total payload size in bytes.
        size: Expr,
    },
    /// Barrier across all ranks.
    Barrier,
}

impl MpiOp {
    /// Short name for traces and diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            MpiOp::Send { .. } => "send",
            MpiOp::Recv { .. } => "recv",
            MpiOp::Broadcast { .. } => "broadcast",
            MpiOp::Reduce { .. } => "reduce",
            MpiOp::Allreduce { .. } => "allreduce",
            MpiOp::Scatter { .. } => "scatter",
            MpiOp::Gather { .. } => "gather",
            MpiOp::Barrier => "barrier",
        }
    }
}

/// One structured step of the program body.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Execute a performance element: run its code fragment, then occupy
    /// the CPU for the evaluated cost (the `execute()` of the paper).
    Exec {
        /// Element name (trace label).
        name: String,
        /// Cost expression (seconds). `None` means zero cost.
        cost: Option<Expr>,
        /// Associated code fragment (Figure 7(b)).
        code: Vec<Stmt>,
    },
    /// Sequential composition.
    Seq(Vec<Step>),
    /// Guarded alternatives; `None` guard is the `else` arm. Arms are
    /// evaluated in order, first true guard wins (if-else-if semantics).
    Branch(Vec<(Option<Expr>, Step)>),
    /// Fork/join concurrency within a process (UML fork bars). Arms run
    /// as concurrent threads on the owning node's CPUs.
    Parallel(Vec<Step>),
    /// A named composite (`<<activity+>>`): pure nesting + trace marker.
    Composite {
        /// Element name.
        name: String,
        /// Body.
        body: Box<Step>,
    },
    /// `<<loop+>>`: repeat `body` `count` times, optionally binding the
    /// iteration variable.
    Loop {
        /// Element name.
        name: String,
        /// Iteration-count expression (evaluated once, at entry).
        count: Expr,
        /// Name bound to the iteration index inside the body.
        var: Option<String>,
        /// Body.
        body: Box<Step>,
    },
    /// `<<parallel+>>` OpenMP region: `threads` team members execute the
    /// body concurrently on the node's CPU facility.
    ParallelRegion {
        /// Element name.
        name: String,
        /// Team size expression; `None` → SP's threads-per-process.
        threads: Option<Expr>,
        /// Body (each thread executes it with its own `tid`).
        body: Box<Step>,
    },
    /// `<<critical+>>`: the body executes under mutual exclusion among
    /// the threads of the owning process (OpenMP `critical` semantics).
    /// `lock` names the lock; criticals with the same lock exclude each
    /// other.
    Critical {
        /// Element name.
        name: String,
        /// Lock name (defaults to the unnamed global lock).
        lock: String,
        /// Body.
        body: Box<Step>,
    },
    /// MPI communication element.
    Mpi {
        /// Element name (trace label).
        name: String,
        /// The operation.
        op: MpiOp,
    },
    /// No-op.
    Nop,
}

impl Step {
    /// Count `Exec` + `Mpi` leaves (size metric).
    pub fn leaf_count(&self) -> usize {
        match self {
            Step::Exec { .. } | Step::Mpi { .. } => 1,
            Step::Seq(items) => items.iter().map(Step::leaf_count).sum(),
            Step::Branch(arms) => arms.iter().map(|(_, s)| s.leaf_count()).sum(),
            Step::Parallel(arms) => arms.iter().map(Step::leaf_count).sum(),
            Step::Composite { body, .. }
            | Step::Loop { body, .. }
            | Step::ParallelRegion { body, .. }
            | Step::Critical { body, .. } => body.leaf_count(),
            Step::Nop => 0,
        }
    }
}

/// A complete executable program model.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Model name.
    pub name: String,
    /// Global variables with initial values.
    pub globals: Vec<(String, f64)>,
    /// Local variables with initial values (per-process).
    pub locals: Vec<(String, f64)>,
    /// Cost functions (and helpers) defined by the model.
    pub functions: Vec<FunctionDef>,
    /// The body.
    pub body: Step,
}

impl Program {
    /// A program with empty body (builder seed).
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            globals: Vec::new(),
            locals: Vec::new(),
            functions: Vec::new(),
            body: Step::Nop,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_expr::parse_expression;

    #[test]
    fn leaf_counts() {
        let p = Step::Seq(vec![
            Step::Exec {
                name: "A".into(),
                cost: None,
                code: vec![],
            },
            Step::Branch(vec![
                (
                    Some(parse_expression("GV > 0").unwrap()),
                    Step::Exec {
                        name: "B".into(),
                        cost: None,
                        code: vec![],
                    },
                ),
                (None, Step::Nop),
            ]),
            Step::Loop {
                name: "L".into(),
                count: parse_expression("3").unwrap(),
                var: None,
                body: Box::new(Step::Mpi {
                    name: "bar".into(),
                    op: MpiOp::Barrier,
                }),
            },
        ]);
        assert_eq!(p.leaf_count(), 3);
    }

    #[test]
    fn mpi_kind_names() {
        assert_eq!(MpiOp::Barrier.kind_name(), "barrier");
        let send = MpiOp::Send {
            dest: parse_expression("1").unwrap(),
            size: parse_expression("8").unwrap(),
            tag: 0,
        };
        assert_eq!(send.kind_name(), "send");
    }
}
