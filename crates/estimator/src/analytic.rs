//! Closed-form analytic evaluation backend.
//!
//! [`evaluate_analytic`] walks the same flattened primitive-op lists the
//! DES interpreter replays ([`crate::interp`]), but resolves completion
//! times in closed form instead of scheduling kernel events:
//!
//! * **compute** — sequential accumulation onto the rank's clock (each
//!   rank is assumed to own one CPU of its node),
//! * **point-to-point** — eager sends record their post time; a receive
//!   completes at `max(recv_ready, send_time + α + size·β)` (Hockney),
//!   matched per `(src, dst, tag)` in FIFO order, exactly the matching
//!   discipline of the interpreter's stash,
//! * **collectives** — the control-message expansion emitted by
//!   [`crate::flatten`] synchronizes all ranks through the root as a
//!   max-barrier; every rank then holds the analytic collective cost
//!   from the machine model,
//! * **thread teams** — when the team fits the node's `cpus_per_node`
//!   CPUs, arms are resolved exactly: they interact only through their
//!   `<<critical+>>` locks, granted FCFS in request-time order like the
//!   kernel's lock facilities. Oversubscribed teams (and nested
//!   criticals) fall back to greedy list scheduling of the arms raised
//!   to a per-lock serialization lower bound,
//! * **deadlock** — if no rank can advance while some rank still has
//!   ops, the same [`SimError::Deadlock`] shape as the kernel is
//!   reported.
//!
//! The dependency resolution is a critical-path pass: ranks are advanced
//! round-robin, each as far as its send/recv dependencies allow, until
//! the whole op graph is resolved — one deterministic sweep with no
//! event calendar, which is why analytic sweeps are much faster than
//! simulated ones (see `bench_analytic`).
//!
//! ## Agreement contract (differential conformance)
//!
//! Relative to the simulation backend on the same
//! [`Program`](crate::program::Program):
//!
//! * **exact** (bit-equal predicted time) for deterministic,
//!   communication-free models — compute costs accumulate through
//!   identical floating-point operations,
//! * **within 1e-9 relative** for deterministic message-passing models —
//!   the kernel reaches an arrival time `a` by holding `a − now`, the
//!   analytic pass computes `a` directly; the two can differ in the last
//!   ulp per message hop,
//! * **approximate** when CPUs are oversubscribed — a thread team
//!   larger than its node's CPU count, nested critical sections, or
//!   more simultaneously runnable flows than CPUs across *different*
//!   ranks: the DES models that contention through its FCFS facilities,
//!   the analytic backend assumes each rank owns a CPU and each thread
//!   team has the node's CPUs to itself.
//!
//! `tests/conformance.rs` at the workspace root pins this contract for
//! every bundled workload model across an SP grid.
//!
//! The analytic backend never touches the DES kernel: the returned
//! [`Evaluation`] has a report with zero events and no facilities, and
//! an empty trace. `seed`, `calendar` and `until` in
//! [`EstimatorOptions`] are ignored — the evaluation is deterministic by
//! construction.

use crate::elab::{flatten_all, RankOps};
use crate::estimator::{EstimatorError, EstimatorOptions, Evaluation};
use crate::flatten::PrimOp;
use prophet_machine::MachineModel;
use prophet_sim::{SimError, SimReport};
use prophet_trace::TraceFile;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// Evaluate `program` on `machine` analytically (no DES kernel).
///
/// Produces a regular [`Evaluation`] whose `predicted_time` is the
/// maximum rank completion time; the report carries zero events and no
/// facility statistics, and the trace is empty.
///
/// # Errors
/// [`EstimatorError::Flatten`] when elaboration fails,
/// [`EstimatorError::Sim`] (deadlock shape) when the send/recv
/// dependency graph has a cycle or an unmatched receive.
pub fn evaluate_analytic(
    program: &crate::program::Program,
    machine: &MachineModel,
    options: &EstimatorOptions,
) -> Result<Evaluation, EstimatorError> {
    let rank_ops = flatten_all(program, machine, options.limits)?;
    evaluate_ops(&program.name, &rank_ops, machine, options)
}

/// Resolve already-elaborated op lists in closed form.
///
/// The scenario-dependent half of [`evaluate_analytic`]: `rank_ops` is
/// the scenario-independent elaboration (from
/// [`flatten_all`] or a [`crate::elab::ElaborationCache`]), borrowed —
/// the critical-path pass never mutates or consumes it.
pub fn evaluate_ops(
    name: &str,
    rank_ops: &RankOps,
    machine: &MachineModel,
    options: &EstimatorOptions,
) -> Result<Evaluation, EstimatorError> {
    let sp = machine.sp;
    debug_assert_eq!(rank_ops.len(), sp.processes, "elaboration/machine mismatch");
    let _ = options; // seed/calendar/until are meaningless in closed form

    let mut replay = Replay {
        machine,
        ip: vec![0; sp.processes],
        time: vec![0.0; sp.processes],
        ops: rank_ops,
        channels: HashMap::new(),
    };
    let end_time = replay.resolve()?;

    Ok(Evaluation {
        predicted_time: end_time,
        report: SimReport {
            end_time,
            events_processed: 0,
            processes_completed: sp.processes,
            processes_spawned: sp.processes,
            facilities: Vec::new(),
            hit_time_limit: false,
        },
        trace: TraceFile::new(name.to_string(), sp.processes),
    })
}

/// In-flight messages of one `(src, dst, tag)` channel: FIFO of
/// `(send_time, bytes)` — the same matching key and order the
/// interpreter's mailbox + stash implement.
type Channels = HashMap<(usize, usize, i64), VecDeque<(f64, u64)>>;

struct Replay<'a> {
    machine: &'a MachineModel,
    /// Per-rank flattened op lists (never mutated during the replay).
    ops: &'a [Arc<[PrimOp]>],
    /// Per-rank instruction pointer.
    ip: Vec<usize>,
    /// Per-rank clock.
    time: Vec<f64>,
    channels: Channels,
}

impl Replay<'_> {
    /// Resolve the whole op graph; returns the latest rank completion.
    fn resolve(&mut self) -> Result<f64, EstimatorError> {
        loop {
            let mut progressed = false;
            for pid in 0..self.ops.len() {
                progressed |= self.advance(pid)?;
            }
            if self
                .ops
                .iter()
                .zip(&self.ip)
                .all(|(ops, &ip)| ip >= ops.len())
            {
                break;
            }
            if !progressed {
                return Err(EstimatorError::Sim(self.deadlock()));
            }
        }
        Ok(self.time.iter().copied().fold(0.0, f64::max))
    }

    /// Advance rank `pid` until it completes or blocks on a receive with
    /// no matching send posted yet. Returns whether any op was resolved.
    fn advance(&mut self, pid: usize) -> Result<bool, EstimatorError> {
        // Disjoint field borrows: `ops` is read-only, the rest mutate.
        let Replay {
            machine,
            ops,
            ip,
            time,
            channels,
        } = self;
        let ops = &ops[pid];
        let mut progressed = false;
        while let Some(op) = ops.get(ip[pid]) {
            match op {
                PrimOp::Enter(_) | PrimOp::Exit(_) => {}
                // Master-flow locks guard against this rank's own thread
                // teams only; the sequential master never contends with
                // itself, so acquisition is free.
                PrimOp::Lock(_) | PrimOp::Unlock(_) => {}
                PrimOp::Compute { seconds, .. } | PrimOp::Wait { seconds, .. } => {
                    time[pid] += seconds;
                }
                PrimOp::SendTo {
                    dest, bytes, tag, ..
                } => {
                    channels
                        .entry((pid, *dest, *tag))
                        .or_default()
                        .push_back((time[pid], *bytes));
                    // Eager send: the sender pays only the CPU overhead
                    // (and only for data messages), as in the interpreter.
                    let overhead = machine.comm.params.send_overhead;
                    if *bytes > 0 && overhead > 0.0 {
                        time[pid] += overhead;
                    }
                }
                PrimOp::RecvFrom { src, tag, .. } => {
                    let key = (*src, pid, *tag);
                    let Some((sent_at, bytes)) =
                        channels.get_mut(&key).and_then(VecDeque::pop_front)
                    else {
                        // Blocked: matching send not posted yet.
                        return Ok(progressed);
                    };
                    let arrival = if bytes > 0 {
                        sent_at + machine.comm.ptp_time(key.0, pid, bytes)
                    } else {
                        sent_at
                    };
                    time[pid] = time[pid].max(arrival);
                }
                PrimOp::Threads { arms, .. } => {
                    time[pid] += team_time(arms, machine.sp.cpus_per_node)?;
                }
            }
            ip[pid] += 1;
            progressed = true;
        }
        Ok(progressed)
    }

    /// Shape the stall exactly like the kernel's deadlock report.
    fn deadlock(&self) -> SimError {
        let blocked: Vec<String> = self
            .ops
            .iter()
            .zip(&self.ip)
            .enumerate()
            .filter(|(_, (ops, &ip))| ip < ops.len())
            .map(|(pid, (ops, &ip))| match &ops[ip] {
                PrimOp::RecvFrom { src, tag, .. } => {
                    format!("rank{pid} waiting for message from rank {src} (tag {tag})")
                }
                other => format!("rank{pid} stuck at {other:?}"),
            })
            .collect();
        let at = self.time.iter().copied().fold(0.0, f64::max);
        SimError::Deadlock {
            blocked,
            at: format!("{at:.6}"),
        }
    }
}

/// Completion time of a thread team.
///
/// When the team fits the node (`arms ≤ servers`, each arm on its own
/// CPU) and no critical sections nest, the arms interact *only* through
/// their locks, and [`fcfs_lock_schedule`] resolves the team exactly:
/// lock requests are granted in request-time order (arm index breaking
/// ties), matching the kernel's FCFS lock facilities.
///
/// Otherwise (oversubscribed team or nested criticals) the result is an
/// approximation: greedy list scheduling of arm totals onto the
/// servers, raised to a per-lock serialization lower bound of
/// `min(first acquisition offset) + Σ locked time`.
pub(crate) fn team_time(arms: &[Vec<PrimOp>], servers: usize) -> Result<f64, EstimatorError> {
    if arms.is_empty() {
        return Ok(0.0);
    }
    let profiles = arms
        .iter()
        .map(|a| arm_profile(a, servers))
        .collect::<Result<Vec<_>, _>>()?;

    if arms.len() <= servers && profiles.iter().all(|p| !p.nested_locks) {
        return Ok(fcfs_lock_schedule(&profiles));
    }

    // Greedy list scheduling: each arm starts on the earliest-free server.
    let mut free = vec![0.0f64; servers.max(1).min(arms.len())];
    let mut makespan = 0.0f64;
    for p in &profiles {
        let mut slot = 0;
        for i in 1..free.len() {
            if free[i] < free[slot] {
                slot = i;
            }
        }
        free[slot] += p.total;
        makespan = makespan.max(free[slot]);
    }

    // Per-lock serialization bound: the critical sections of one lock
    // cannot overlap, and none can start before the earliest arm reaches
    // its first acquisition.
    let mut lock_bound = 0.0f64;
    let mut locks: HashMap<usize, (f64, f64)> = HashMap::new(); // id -> (min first offset, Σ locked)
    for p in &profiles {
        let mut first_seen: HashMap<usize, f64> = HashMap::new();
        let mut offset = 0.0;
        for ev in &p.events {
            match *ev {
                ArmEvent::Free(d) => offset += d,
                ArmEvent::Locked(id, d) => {
                    first_seen.entry(id).or_insert(offset);
                    offset += d;
                    let e = locks.entry(id).or_insert((f64::INFINITY, 0.0));
                    e.1 += d;
                }
            }
        }
        for (id, first) in first_seen {
            let e = locks.entry(id).or_insert((f64::INFINITY, 0.0));
            e.0 = e.0.min(first);
        }
    }
    for (first, total_locked) in locks.values() {
        lock_bound = lock_bound.max(first + total_locked);
    }

    Ok(makespan.max(lock_bound))
}

/// Resolve a dedicated-CPU team exactly: every arm runs on its own
/// server, so completion is governed purely by lock contention. Grants
/// happen in request-time order (FCFS, arm index breaking simultaneous
/// requests) — any arm's future request is never earlier than the
/// current globally-earliest pending one, so granting the minimum is
/// exact.
fn fcfs_lock_schedule(profiles: &[ArmProfile]) -> f64 {
    let n = profiles.len();
    let mut time = vec![0.0f64; n];
    let mut idx = vec![0usize; n];
    let mut avail: HashMap<usize, f64> = HashMap::new();

    let advance_free = |i: usize, time: &mut [f64], idx: &mut [usize]| {
        while let Some(ArmEvent::Free(d)) = profiles[i].events.get(idx[i]) {
            time[i] += d;
            idx[i] += 1;
        }
    };
    for i in 0..n {
        advance_free(i, &mut time, &mut idx);
    }
    loop {
        // Earliest pending lock request (every non-exhausted arm is
        // parked on a Locked event after advance_free).
        let mut best: Option<usize> = None;
        for i in 0..n {
            if idx[i] < profiles[i].events.len() && best.is_none_or(|b| time[i] < time[b]) {
                best = Some(i);
            }
        }
        let Some(i) = best else { break };
        let ArmEvent::Locked(id, dur) = profiles[i].events[idx[i]] else {
            unreachable!("advance_free leaves arms parked on Locked events");
        };
        let start = time[i].max(avail.get(&id).copied().unwrap_or(0.0));
        time[i] = start + dur;
        avail.insert(id, time[i]);
        idx[i] += 1;
        advance_free(i, &mut time, &mut idx);
    }
    time.into_iter().fold(0.0, f64::max)
}

/// One step of a thread arm's sequential timeline.
#[derive(Debug, Clone, Copy)]
enum ArmEvent {
    /// Run for this long holding no lock.
    Free(f64),
    /// Hold this lock for this long (one `<<critical+>>` section).
    Locked(usize, f64),
}

/// Sequential profile of one thread arm.
struct ArmProfile {
    /// The arm's timeline at critical-section granularity.
    events: Vec<ArmEvent>,
    /// Total busy time (compute + waits + nested teams).
    total: f64,
    /// A critical section opened inside another one — the exact FCFS
    /// schedule does not model lock-ordering cycles, so fall back.
    nested_locks: bool,
}

fn arm_profile(ops: &[PrimOp], servers: usize) -> Result<ArmProfile, EstimatorError> {
    let mut t = 0.0f64;
    let mut events: Vec<ArmEvent> = Vec::new();
    // Lock currently held: `(id, section start)`.
    let mut open: Option<(usize, f64)> = None;
    let mut depth = 0usize;
    let mut nested_locks = false;
    for op in ops {
        match op {
            PrimOp::Enter(_) | PrimOp::Exit(_) => {}
            PrimOp::Compute { seconds, .. } | PrimOp::Wait { seconds, .. } => {
                if open.is_none() && *seconds > 0.0 {
                    if let Some(ArmEvent::Free(d)) = events.last_mut() {
                        *d += seconds;
                    } else {
                        events.push(ArmEvent::Free(*seconds));
                    }
                }
                t += seconds;
            }
            PrimOp::Lock(id) => {
                depth += 1;
                if depth > 1 {
                    nested_locks = true;
                } else {
                    open = Some((*id, t));
                }
            }
            PrimOp::Unlock(_) => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    if let Some((id, start)) = open.take() {
                        events.push(ArmEvent::Locked(id, t - start));
                    }
                }
            }
            PrimOp::Threads { arms, .. } => {
                // Flatten forbids nested teams today; keep the recursion
                // so the analytic backend stays total over the op algebra.
                let span = team_time(arms, servers)?;
                if open.is_none() && span > 0.0 {
                    if let Some(ArmEvent::Free(d)) = events.last_mut() {
                        *d += span;
                    } else {
                        events.push(ArmEvent::Free(span));
                    }
                }
                t += span;
            }
            PrimOp::SendTo { element, .. } | PrimOp::RecvFrom { element, .. } => {
                return Err(EstimatorError::Mismatch(format!(
                    "communication op `{element}` inside a thread team"
                )));
            }
        }
    }
    Ok(ArmProfile {
        events,
        total: t,
        nested_locks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{MpiOp, Program, Step};
    use prophet_expr::parse_expression;
    use prophet_machine::{CommParams, SystemParams};

    fn machine(nodes: usize, cpn: usize) -> MachineModel {
        MachineModel::new(SystemParams::flat_mpi(nodes, cpn), CommParams::default()).unwrap()
    }

    fn exec(name: &str, cost: &str) -> Step {
        Step::Exec {
            name: name.into(),
            cost: Some(parse_expression(cost).unwrap()),
            code: vec![],
        }
    }

    fn analytic(p: &Program, m: MachineModel) -> Evaluation {
        evaluate_analytic(p, &m, &EstimatorOptions::default()).unwrap()
    }

    #[test]
    fn sequential_costs_sum_exactly() {
        let mut p = Program::new("seq");
        p.body = Step::Seq(vec![exec("A", "1.5"), exec("B", "2.5")]);
        let e = analytic(&p, machine(1, 1));
        assert_eq!(e.predicted_time, 4.0);
        assert!(e.trace.is_empty(), "analytic backend records no trace");
        assert_eq!(e.report.events_processed, 0, "no DES kernel involvement");
        assert!(e.report.facilities.is_empty());
    }

    #[test]
    fn ping_pong_includes_hockney_transfer() {
        let m = machine(2, 1);
        let transfer = m.comm.ptp_time(0, 1, 1_000_000);
        let mut p = Program::new("pp");
        p.body = Step::Branch(vec![
            (
                Some(parse_expression("pid == 0").unwrap()),
                Step::Mpi {
                    name: "s".into(),
                    op: MpiOp::Send {
                        dest: parse_expression("1").unwrap(),
                        size: parse_expression("1000000").unwrap(),
                        tag: 0,
                    },
                },
            ),
            (
                None,
                Step::Mpi {
                    name: "r".into(),
                    op: MpiOp::Recv {
                        src: parse_expression("0").unwrap(),
                        tag: 0,
                    },
                },
            ),
        ]);
        let e = analytic(&p, m);
        assert!(
            (e.predicted_time - transfer).abs() < 1e-12,
            "{} vs {transfer}",
            e.predicted_time
        );
    }

    #[test]
    fn barrier_is_a_max_barrier() {
        let mut p = Program::new("bar");
        p.body = Step::Seq(vec![
            Step::Branch(vec![
                (
                    Some(parse_expression("pid == 0").unwrap()),
                    exec("slow", "5"),
                ),
                (None, exec("fast", "1")),
            ]),
            Step::Mpi {
                name: "b".into(),
                op: MpiOp::Barrier,
            },
            exec("tail", "1"),
        ]);
        let e = analytic(&p, machine(2, 1));
        assert!(e.predicted_time >= 6.0, "{}", e.predicted_time);
        assert!(e.predicted_time < 6.1, "{}", e.predicted_time);
    }

    #[test]
    fn thread_team_schedules_on_node_cpus() {
        // 4 threads × 1s on 2 CPUs → 2s.
        let mut p = Program::new("omp");
        p.body = Step::ParallelRegion {
            name: "R".into(),
            threads: Some(parse_expression("4").unwrap()),
            body: Box::new(exec("W", "1")),
        };
        let m = MachineModel::new(
            SystemParams {
                nodes: 1,
                cpus_per_node: 2,
                processes: 1,
                threads_per_process: 4,
            },
            CommParams::default(),
        )
        .unwrap();
        assert_eq!(analytic(&p, m).predicted_time, 2.0);
    }

    #[test]
    fn critical_sections_serialize() {
        // 4 threads: 1s parallel + 1s critical each, 4 CPUs → 1 + 4 = 5s.
        let mut p = Program::new("crit");
        p.body = Step::ParallelRegion {
            name: "R".into(),
            threads: Some(parse_expression("4").unwrap()),
            body: Box::new(Step::Seq(vec![
                exec("Par", "1"),
                Step::Critical {
                    name: "Crit".into(),
                    lock: "<global>".into(),
                    body: Box::new(exec("Locked", "1")),
                },
            ])),
        };
        let m = MachineModel::new(
            SystemParams {
                nodes: 1,
                cpus_per_node: 4,
                processes: 1,
                threads_per_process: 4,
            },
            CommParams::default(),
        )
        .unwrap();
        assert_eq!(analytic(&p, m).predicted_time, 5.0);
    }

    #[test]
    fn distinct_locks_run_concurrently() {
        let critical = |name: &str, lock: &str| Step::Critical {
            name: name.into(),
            lock: lock.into(),
            body: Box::new(exec("W", "2")),
        };
        let m = || {
            MachineModel::new(
                SystemParams {
                    nodes: 1,
                    cpus_per_node: 2,
                    processes: 1,
                    threads_per_process: 2,
                },
                CommParams::default(),
            )
            .unwrap()
        };
        let mut p = Program::new("locks");
        p.body = Step::Parallel(vec![critical("C1", "a"), critical("C2", "b")]);
        assert_eq!(analytic(&p, m()).predicted_time, 2.0);
        let mut p = Program::new("locks2");
        p.body = Step::Parallel(vec![critical("C1", "x"), critical("C2", "x")]);
        assert_eq!(analytic(&p, m()).predicted_time, 4.0);
    }

    #[test]
    fn asymmetric_critical_sections_match_the_simulation() {
        // Arm A takes the lock immediately (1s); arm B computes 0.9s,
        // then needs the same lock (1s), then computes 5s more. A holds
        // the lock 0→1, so B waits 0.9→1, is locked 1→2, and finishes at
        // 7. A bound-only lock model absorbs B's wait into its makespan
        // and answers 6.9 — this pins the exact FCFS lock schedule.
        let mut p = Program::new("asym");
        p.body = Step::Parallel(vec![
            Step::Critical {
                name: "CA".into(),
                lock: "x".into(),
                body: Box::new(exec("WA", "1")),
            },
            Step::Seq(vec![
                exec("Pre", "0.9"),
                Step::Critical {
                    name: "CB".into(),
                    lock: "x".into(),
                    body: Box::new(exec("WB", "1")),
                },
                exec("Post", "5"),
            ]),
        ]);
        let m = || {
            MachineModel::new(
                SystemParams {
                    nodes: 1,
                    cpus_per_node: 2,
                    processes: 1,
                    threads_per_process: 2,
                },
                CommParams::default(),
            )
            .unwrap()
        };
        let ana = analytic(&p, m()).predicted_time;
        let sim = crate::estimator::Estimator::new(m(), EstimatorOptions::default())
            .evaluate(&p)
            .unwrap()
            .predicted_time;
        assert_eq!(sim, 7.0);
        assert_eq!(ana, sim, "dedicated-CPU teams must match the DES exactly");
    }

    #[test]
    fn unmatched_recv_reports_deadlock() {
        let mut p = Program::new("stuck");
        p.body = Step::Branch(vec![(
            Some(parse_expression("pid == 0").unwrap()),
            Step::Mpi {
                name: "r".into(),
                op: MpiOp::Recv {
                    src: parse_expression("1").unwrap(),
                    tag: 0,
                },
            },
        )]);
        let err = evaluate_analytic(&p, &machine(2, 1), &EstimatorOptions::default()).unwrap_err();
        match err {
            EstimatorError::Sim(SimError::Deadlock { blocked, .. }) => {
                assert!(blocked.iter().any(|b| b.contains("rank0")), "{blocked:?}");
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn seed_and_calendar_do_not_matter() {
        let mut p = Program::new("det");
        p.body = Step::Seq(vec![
            exec("A", "0.5 + 0.125 * pid"),
            Step::Mpi {
                name: "b".into(),
                op: MpiOp::Barrier,
            },
        ]);
        let time = |seed: u64| {
            let options = EstimatorOptions {
                seed,
                ..Default::default()
            };
            evaluate_analytic(&p, &machine(4, 1), &options)
                .unwrap()
                .predicted_time
        };
        assert_eq!(time(1).to_bits(), time(u64::MAX).to_bits());
    }
}
