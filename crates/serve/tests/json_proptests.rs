//! Property tests for the service's JSON layer: encode→decode identity
//! on arbitrary values, plus adversarial decoder inputs (deep nesting,
//! bad escapes, trailing garbage) that must fail *cleanly*.

use prophet_serve::json::{parse, Json, MAX_DEPTH};
use proptest::prelude::*;

/// Object keys: short, unique-ish strings (the decoder rejects
/// duplicate keys, so strategies dedupe before building objects).
fn key_strategy() -> impl Strategy<Value = String> {
    "[a-z_][a-z0-9_.-]{0,8}".prop_map(|s| s)
}

/// Strings exercising escapes: quotes, backslashes, control characters,
/// and non-ASCII text (including astral-plane characters, which the
/// encoder emits raw and `\u` escapes must be able to represent).
fn text_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9\"\\\\/\t\n\r\u{08}\u{0C}éπ😀 ]{0,12}".prop_map(|s| s)
}

/// Finite numbers across magnitudes, including negatives, zero, and
/// values that need the full shortest-roundtrip formatter.
fn number_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        Just(-0.0),
        (-1.0e9..1.0e9).prop_map(|x| x),
        (-1.0..1.0).prop_map(|x| x * 1.0e-12),
        (0u32..u32::MAX).prop_map(|n| n as f64),
        (-1.0e300..1.0e300).prop_map(|x| x),
    ]
}

fn json_strategy() -> BoxedStrategy<Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        number_strategy().prop_map(Json::Number),
        text_strategy().prop_map(Json::String),
    ];
    leaf.prop_recursive(4, 64, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Json::Array),
            prop::collection::vec((key_strategy(), inner), 0..4).prop_map(|members| {
                let mut seen = std::collections::BTreeSet::new();
                Json::Object(
                    members
                        .into_iter()
                        .filter(|(k, _)| seen.insert(k.clone()))
                        .collect(),
                )
            }),
        ]
    })
}

proptest! {
    /// The round-trip identity: any finite value survives
    /// encode→decode exactly (numbers via shortest-roundtrip `f64`
    /// formatting, strings via full escape handling).
    #[test]
    fn encode_decode_identity(value in json_strategy()) {
        let text = value.encode();
        let back = parse(&text).map_err(|e| {
            proptest::test_runner::TestCaseError::fail(format!("{text:?}: {e}"))
        })?;
        prop_assert_eq!(&back, &value, "{}", text);
        // Encoding is deterministic: re-encode of the decode is stable.
        prop_assert_eq!(back.encode(), text);
    }

    /// Decoding then re-encoding accepted text is idempotent from the
    /// value side: parse(encode(parse(t))) == parse(t).
    #[test]
    fn decode_encode_decode_is_stable(value in json_strategy()) {
        let text = value.encode();
        let once = parse(&text).unwrap();
        let twice = parse(&once.encode()).unwrap();
        prop_assert_eq!(once, twice);
    }

    /// Anything non-whitespace after a complete value must be rejected,
    /// whatever the value.
    #[test]
    fn trailing_garbage_always_rejected(
        value in json_strategy(),
        garbage in "[a-z{}\\[\\]\",:0-9]{1,6}",
    ) {
        let text = format!("{} {garbage}", value.encode());
        // Appending to a number can extend the token (e.g. `1` + `2`),
        // still never a silent success with leftover bytes *after* a
        // separator — the space guarantees a new token.
        prop_assert!(parse(&text).is_err(), "{text:?} must not parse");
    }

    /// Arrays and objects nested past MAX_DEPTH fail with the depth
    /// error; at or below the limit they parse.
    #[test]
    fn depth_limit_is_sharp(extra in 1usize..4, open in 0usize..2) {
        let (o, c) = if open == 0 { ("[", "]") } else { ("{\"k\":", "}") };
        let too_deep = o.repeat(MAX_DEPTH + extra) + "1" + &c.repeat(MAX_DEPTH + extra);
        let err = parse(&too_deep).unwrap_err();
        prop_assert!(err.message.contains("nesting"), "{}", err);
        let at_limit = o.repeat(MAX_DEPTH) + "1" + &c.repeat(MAX_DEPTH);
        prop_assert!(parse(&at_limit).is_ok());
    }

    /// Truncating valid text anywhere strictly inside it never parses
    /// (every prefix of a JSON document is incomplete) — and never
    /// panics.
    #[test]
    fn proper_prefixes_never_parse(value in json_strategy(), cut in 0.0f64..1.0) {
        let text = value.encode();
        if text.len() > 1 {
            let mut at = 1 + ((text.len() - 1) as f64 * cut) as usize;
            while !text.is_char_boundary(at) {
                at -= 1;
            }
            if at > 0 {
                let prefix = &text[..at];
                // Numeric prefixes of numbers can still be valid JSON
                // (`12` of `123`); structural values cannot.
                if !matches!(value, Json::Number(_)) {
                    prop_assert!(parse(prefix).is_err(), "{prefix:?} from {text:?}");
                }
            }
        }
    }

    /// Bad escape sequences are rejected wherever they appear in a
    /// string, with an offset inside the input.
    #[test]
    fn bad_escapes_rejected(prefix in "[a-z ]{0,6}", bad in "[qxzZ08 ]") {
        let text = format!("\"{prefix}\\{bad}\"");
        let err = parse(&text).unwrap_err();
        prop_assert!(err.offset <= text.len(), "{}", err);
        prop_assert!(err.message.contains("escape"), "{}", err);
    }

    /// Lone surrogates — high without low, or low first — never decode.
    #[test]
    fn lone_surrogates_rejected(hi in 0xD800u32..0xDC00, lo in 0xDC00u32..0xE000) {
        prop_assert!(parse(&format!("\"\\u{hi:04x}\"")).is_err());
        prop_assert!(parse(&format!("\"\\u{lo:04x}\"")).is_err());
        prop_assert!(parse(&format!("\"\\u{hi:04x}\\u{hi:04x}\"")).is_err());
        // A proper pair decodes to exactly one astral character.
        let paired = parse(&format!("\"\\u{hi:04x}\\u{lo:04x}\"")).unwrap();
        prop_assert_eq!(paired.as_str().unwrap().chars().count(), 1);
    }
}
