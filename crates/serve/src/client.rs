//! A tiny blocking HTTP client: one-shot helpers for tests and smoke
//! checks, plus a persistent keep-alive [`Connection`] — the router's
//! transport to its shards, and what the benches use so sustained load
//! stops paying a TCP connect per request.

use crate::json::{self, Json};
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A decoded response: status code and parsed JSON body.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// The response body, parsed as JSON.
    pub body: Json,
    /// The server's `x-prophet-trace` response header, if present.
    pub trace: Option<String>,
}

/// An undecoded response off a [`Connection`]: what a proxy forwards
/// verbatim without re-parsing the payload.
#[derive(Debug)]
pub struct RawResponse {
    /// HTTP status code.
    pub status: u16,
    /// The raw body text.
    pub body: String,
    /// Whether the server will keep the connection open.
    pub keep_alive: bool,
    /// The server's `x-prophet-trace` response header, if present.
    pub trace: Option<String>,
}

/// Longest accepted response head line, mirroring the server's bound.
const MAX_RESPONSE_LINE: usize = 8 * 1024;

/// The two halves of one established connection: writes go straight to
/// the socket, reads through a buffer that survives across requests.
struct Wire {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

/// A persistent keep-alive connection to one server.
///
/// Requests run sequentially over a single TCP connection; when the
/// server closes it (idle timeout, `connection: close`, restart), the
/// next request transparently reconnects — and a request that fails on
/// a previously *used* connection is retried once on a fresh one, since
/// a pooled socket may have died while idle. Callers that must not
/// retry should use the one-shot helpers instead.
#[derive(Debug)]
pub struct Connection {
    addr: SocketAddr,
    wire: Option<Wire>,
    io_timeout: Option<Duration>,
    reconnects: u64,
}

impl std::fmt::Debug for Wire {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wire").finish()
    }
}

impl Connection {
    /// A lazily-connected handle; the first request dials.
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            wire: None,
            io_timeout: None,
            reconnects: 0,
        }
    }

    /// Connect eagerly, surfacing dial failures immediately.
    ///
    /// # Errors
    /// The connect failure, as a message string.
    pub fn connect(addr: SocketAddr) -> Result<Self, String> {
        let mut conn = Self::new(addr);
        conn.dial()?;
        Ok(conn)
    }

    /// Bound every socket read/write on this connection (`None` blocks
    /// indefinitely, the default).
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) {
        self.io_timeout = timeout;
        if let Some(wire) = &self.wire {
            let _ = wire.stream.set_read_timeout(timeout);
            let _ = wire.stream.set_write_timeout(timeout);
        }
    }

    /// The peer address this connection dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many times a request had to re-dial after the first
    /// connection was established — 0 under healthy keep-alive.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn dial(&mut self) -> Result<(), String> {
        let stream =
            TcpStream::connect(self.addr).map_err(|e| format!("connect {}: {e}", self.addr))?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(self.io_timeout);
        let _ = stream.set_write_timeout(self.io_timeout);
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("clone socket: {e}"))?,
        );
        if self.wire.is_some() || self.reconnects > 0 {
            self.reconnects += 1;
        }
        self.wire = Some(Wire { stream, reader });
        Ok(())
    }

    /// Issue one request, reusing the pooled socket when possible. A
    /// failure on a previously used connection is retried once on a
    /// fresh one (the pooled socket may have been closed while idle);
    /// a failure on a fresh connection is final.
    ///
    /// # Errors
    /// Dial/send/receive failures and malformed responses, as a
    /// message string.
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        headers: &[(&str, &str)],
    ) -> Result<RawResponse, String> {
        let pooled = self.wire.is_some();
        match self.try_send(method, path, body, headers) {
            Err(_) if pooled => {
                self.wire = None;
                self.try_send(method, path, body, headers)
            }
            result => result,
        }
    }

    fn try_send(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        headers: &[(&str, &str)],
    ) -> Result<RawResponse, String> {
        if self.wire.is_none() {
            self.dial()?;
        }
        let wire = self.wire.as_mut().expect("dialed above");
        let payload = body.unwrap_or_default();
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n",
            self.addr,
            payload.len()
        );
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        // Head + body in one write: two small packets back to back
        // would hit the Nagle/delayed-ACK stall on a pooled socket.
        head.push_str(payload);
        let sent = wire
            .stream
            .write_all(head.as_bytes())
            .and_then(|()| wire.stream.flush());
        if let Err(e) = sent {
            self.wire = None;
            return Err(format!("send: {e}"));
        }
        match read_response(&mut wire.reader) {
            Ok(response) => {
                if !response.keep_alive {
                    self.wire = None;
                }
                Ok(response)
            }
            Err(e) => {
                self.wire = None;
                Err(e)
            }
        }
    }

    /// [`Connection::send`], decoding the JSON body.
    ///
    /// # Errors
    /// Transport failures and non-JSON bodies, as a message string.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<ClientResponse, String> {
        let payload = body.map(Json::encode);
        let raw = self.send(method, path, payload.as_deref(), &[])?;
        let body =
            json::parse(&raw.body).map_err(|e| format!("non-JSON body {:?}: {e}", raw.body))?;
        Ok(ClientResponse {
            status: raw.status,
            body,
            trace: raw.trace,
        })
    }

    /// [`Connection::request`] for `GET` endpoints.
    ///
    /// # Errors
    /// As [`Connection::request`].
    pub fn get(&mut self, path: &str) -> Result<ClientResponse, String> {
        self.request("GET", path, None)
    }

    /// [`Connection::request`] for `POST` endpoints.
    ///
    /// # Errors
    /// As [`Connection::request`].
    pub fn post(&mut self, path: &str, body: &Json) -> Result<ClientResponse, String> {
        self.request("POST", path, Some(body))
    }
}

/// Read one bounded CRLF-terminated line of a response head.
fn read_head_line(reader: &mut BufReader<TcpStream>) -> Result<String, String> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        reader
            .read_exact(&mut byte)
            .map_err(|e| format!("response ended mid-line: {e}"))?;
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line).map_err(|_| "non-UTF-8 in response head".to_string());
        }
        line.push(byte[0]);
        if line.len() > MAX_RESPONSE_LINE {
            return Err("response head line too long".to_string());
        }
    }
}

/// Parse one framed response: status line, headers, `content-length`
/// body. Framing by length (not EOF) is what makes keep-alive possible.
fn read_response(reader: &mut BufReader<TcpStream>) -> Result<RawResponse, String> {
    let status_line = read_head_line(reader)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: {status_line:?}"))?;
    let mut length: Option<usize> = None;
    let mut keep_alive = true; // HTTP/1.1 default
    let mut trace: Option<String> = None;
    loop {
        let line = read_head_line(reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(format!("malformed response header {line:?}"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            length = Some(
                value
                    .parse()
                    .map_err(|_| format!("bad content-length {value:?}"))?,
            );
        } else if name == "connection" {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name == crate::http::TRACE_HEADER {
            trace = Some(value.to_string());
        }
    }
    let length = length.ok_or("response without content-length")?;
    if length > crate::http::MAX_BODY {
        return Err(format!("response body of {length} bytes is over the limit"));
    }
    let mut body = vec![0u8; length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("short response body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "response body is not UTF-8".to_string())?;
    Ok(RawResponse {
        status,
        body,
        keep_alive,
        trace,
    })
}

/// Issue one request on a throwaway connection and parse the JSON
/// response. The request announces `connection: close`, so the server
/// ends the connection after answering.
///
/// # Errors
/// I/O failures, malformed responses and non-JSON bodies all surface as
/// a message string (the callers are tests and benches that `expect`).
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&Json>,
) -> Result<ClientResponse, String> {
    let payload = body.map(Json::encode).unwrap_or_default();
    let mut frame = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        payload.len()
    );
    frame.push_str(&payload);
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    stream
        .write_all(frame.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("receive: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed response: {raw:?}"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: {head:?}"))?;
    let trace = head.lines().find_map(|line| {
        let (name, value) = line.split_once(':')?;
        name.trim()
            .eq_ignore_ascii_case(crate::http::TRACE_HEADER)
            .then(|| value.trim().to_string())
    });
    let body = json::parse(body).map_err(|e| format!("non-JSON body {body:?}: {e}"))?;
    Ok(ClientResponse {
        status,
        body,
        trace,
    })
}

/// [`request`] for `GET` endpoints.
///
/// # Errors
/// As [`request`].
pub fn get(addr: SocketAddr, path: &str) -> Result<ClientResponse, String> {
    request(addr, "GET", path, None)
}

/// [`request`] for `POST` endpoints.
///
/// # Errors
/// As [`request`].
pub fn post(addr: SocketAddr, path: &str, body: &Json) -> Result<ClientResponse, String> {
    request(addr, "POST", path, Some(body))
}
