//! A tiny blocking HTTP client for the service's own tests, benches and
//! CI smoke checks — one request per connection, mirroring the server's
//! connection model.

use crate::json::{self, Json};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A decoded response: status code and parsed JSON body.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// The response body, parsed as JSON.
    pub body: Json,
}

/// Issue one request and parse the JSON response.
///
/// # Errors
/// I/O failures, malformed responses and non-JSON bodies all surface as
/// a message string (the callers are tests and benches that `expect`).
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&Json>,
) -> Result<ClientResponse, String> {
    let payload = body.map(Json::encode).unwrap_or_default();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        payload.len()
    );
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(payload.as_bytes()))
        .map_err(|e| format!("send: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("receive: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed response: {raw:?}"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: {head:?}"))?;
    let body = json::parse(body).map_err(|e| format!("non-JSON body {body:?}: {e}"))?;
    Ok(ClientResponse { status, body })
}

/// [`request`] for `GET` endpoints.
pub fn get(addr: SocketAddr, path: &str) -> Result<ClientResponse, String> {
    request(addr, "GET", path, None)
}

/// [`request`] for `POST` endpoints.
pub fn post(addr: SocketAddr, path: &str, body: &Json) -> Result<ClientResponse, String> {
    request(addr, "POST", path, Some(body))
}
