//! The server core: one accept loop, a fixed pool of worker threads, a
//! shared [`AppState`], graceful drain on shutdown.
//!
//! Architecture (std-only, no async runtime):
//!
//! ```text
//!  TcpListener ──accept──▶ mpsc channel ──recv──▶ worker 0..W
//!      │                                             │
//!      │  (accept thread)                            ├─ parse request
//!      │                                             ├─ api::handle(state)
//!   shutdown flag ◀── POST /v1/shutdown ─────────────┤
//!      │                                             └─ write response
//!      └─ self-connect wakes accept; channel closes; workers drain
//! ```
//!
//! The accept thread only accepts and enqueues, so a slow client never
//! blocks accepting; workers pull connections off the channel, which
//! gives FIFO fairness and natural backpressure (the queue, not the
//! listener backlog, is where bursts wait). Shutdown — via
//! [`ServerHandle::shutdown`] or `POST /v1/shutdown` — flips the flag,
//! wakes the accept thread with a loopback connect, closes the channel,
//! and joins every worker after it finished its in-flight request:
//! accepted connections are always answered, never dropped.

use crate::api::{self, AppState};
use crate::http::{read_request, Response};
use crate::pool::SessionPool;
use prophet_core::ArtifactStore;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Default per-connection socket read/write timeout.
pub const DEFAULT_IO_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(10);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7077` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads; `0` selects the available parallelism.
    pub workers: usize,
    /// Per-connection socket read/write timeout. Without one, a client
    /// that connects and sends nothing (slow-loris, half-open probe)
    /// would park a worker in a blocking read forever — and a wedged
    /// worker can never be joined, so graceful drain would hang too.
    pub io_timeout: std::time::Duration,
    /// Optional persistent artifact store (`prophet serve --store DIR`):
    /// the session pool warm-starts from it before the listener spawns,
    /// consults it on pool misses, and writes fresh compiles back, so a
    /// restarted server answers its first estimate with zero compiles.
    pub store: Option<Arc<ArtifactStore>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7077".to_string(),
            workers: 0,
            io_timeout: DEFAULT_IO_TIMEOUT,
            store: None,
        }
    }
}

/// A running server: the bound address plus the handle to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<AppState>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Bind and start serving in background threads. With a store
/// configured, the pool warm-starts from it *before* any worker spawns,
/// so the very first request can land on a pre-loaded session.
///
/// # Errors
/// Propagates the bind failure (port in use, bad address).
pub fn serve(config: &ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let workers = if config.workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        config.workers
    };

    let pool = match &config.store {
        Some(store) => SessionPool::with_store(crate::pool::DEFAULT_CAPACITY, Arc::clone(store)),
        None => SessionPool::default(),
    };
    let state = Arc::new(AppState::with_pool(pool));
    state.pool.warm_start();
    let shutdown = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));

    let io_timeout = config.io_timeout;
    let worker_handles: Vec<JoinHandle<()>> = (0..workers)
        .map(|_| {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || worker_loop(&rx, &state, &shutdown, io_timeout))
        })
        .collect();

    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || accept_loop(listener, tx, &shutdown))
    };

    Ok(ServerHandle {
        addr,
        state,
        shutdown,
        accept_thread: Some(accept_thread),
        workers: worker_handles,
    })
}

fn accept_loop(listener: TcpListener, tx: Sender<TcpStream>, shutdown: &AtomicBool) {
    for stream in listener.incoming() {
        let stop = shutdown.load(Ordering::SeqCst);
        // Transient accept errors (EMFILE, aborted handshakes) must not
        // kill the server, so only `Ok` streams are enqueued — and even
        // the connection that woke us for shutdown is: it is usually
        // join_all's self-connect (answered with a cheap 400 against a
        // closed socket), but it can also be a real client racing the
        // drain, and accepted clients are always answered, never
        // dropped.
        if let Ok(stream) = stream {
            if tx.send(stream).is_err() {
                break;
            }
        }
        if stop {
            break;
        }
    }
    // Dropping `tx` closes the channel: workers drain what was already
    // accepted, then exit.
}

fn worker_loop(
    rx: &Mutex<Receiver<TcpStream>>,
    state: &AppState,
    shutdown: &AtomicBool,
    io_timeout: std::time::Duration,
) {
    loop {
        // Hold the lock only to receive; handling runs unlocked.
        let stream = match rx.lock().expect("connection queue lock").recv() {
            Ok(stream) => stream,
            Err(_) => return, // channel closed: drained, shut down
        };
        handle_connection(stream, state, shutdown, io_timeout);
    }
}

fn handle_connection(
    mut stream: TcpStream,
    state: &AppState,
    shutdown: &AtomicBool,
    io_timeout: std::time::Duration,
) {
    let started = std::time::Instant::now();
    // Bound every socket operation: a silent or stalled peer costs a
    // worker at most `io_timeout`, never forever.
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let (response, stop, endpoint) = match read_request(&mut stream) {
        Ok(request) => {
            let endpoint = (request.method.clone(), request.path.clone());
            let (response, stop) = api::handle(state, &request);
            (response, stop, Some(endpoint))
        }
        Err(e) => (
            Response::json(
                e.status,
                crate::json::Json::object([("error", crate::json::Json::from(e.message))]).encode(),
            ),
            false,
            None,
        ),
    };
    let error = response.status >= 400;
    // Record metrics *before* the response bytes become visible: a
    // client that sees its response and immediately asks /v1/metrics
    // must find its own request already counted.
    let counters = match &endpoint {
        Some((method, path)) => state.metrics.endpoint(method, path),
        None => &state.metrics.other,
    };
    counters.record(started.elapsed(), error);
    if stop {
        shutdown.store(true, Ordering::SeqCst);
    }
    // A dead client is the client's problem; the worker moves on.
    let _ = response.write_to(&mut stream);
}

impl ServerHandle {
    /// The bound address (the actual port when configured with `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared handler state (pool + metrics) — for in-process
    /// assertions in tests and benches.
    pub fn state(&self) -> &AppState {
        &self.state
    }

    /// True once shutdown has been requested (e.g. `POST /v1/shutdown`).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Block until a shutdown request arrives (`POST /v1/shutdown`),
    /// then drain: all in-flight requests are answered before this
    /// returns. This is what `prophet serve` parks on.
    pub fn wait(mut self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        self.join_all();
    }

    /// Request shutdown and drain: stops accepting, answers what was
    /// already accepted, joins every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.join_all();
    }

    /// Join every thread. Callers guarantee the shutdown flag is set
    /// before this runs (so the wake connects below cannot be mistaken
    /// for client traffic that deserves an answer).
    fn join_all(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept_thread.take() {
            // Wake the accept loop so it observes the flag; it breaks on
            // the first iteration after the store above. Retry until it
            // exits in case a racing real connection consumed the wake.
            while !accept.is_finished() {
                let _ = TcpStream::connect(self.addr);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.join_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use crate::json::Json;

    fn start(workers: usize) -> ServerHandle {
        serve(&ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            ..Default::default()
        })
        .expect("bind port 0")
    }

    #[test]
    fn silent_clients_time_out_instead_of_wedging_workers() {
        // One worker, tiny I/O timeout: a client that connects and sends
        // nothing must not park that worker forever (slow-loris).
        let server = serve(&ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            io_timeout: std::time::Duration::from_millis(50),
            ..Default::default()
        })
        .expect("bind port 0");
        let addr = server.addr();
        let _silent = TcpStream::connect(addr).unwrap(); // never writes
        let _silent2 = TcpStream::connect(addr).unwrap();
        // The single worker frees itself after the timeout and serves
        // real traffic again.
        let r = client::get(addr, "/v1/models").unwrap();
        assert_eq!(r.status, 200);
        // Graceful drain still works with the stalled sockets around.
        client::post(addr, "/v1/shutdown", &Json::object::<&str>([])).unwrap();
        server.wait();
    }

    #[test]
    fn serves_models_and_metrics() {
        let server = start(2);
        let addr = server.addr();
        let models = client::get(addr, "/v1/models").unwrap();
        assert_eq!(models.status, 200);
        assert_eq!(
            models.body.get("models").unwrap().as_array().unwrap().len(),
            6
        );
        let metrics = client::get(addr, "/v1/metrics").unwrap();
        assert_eq!(metrics.status, 200);
        server.shutdown();
    }

    #[test]
    fn malformed_http_gets_an_error_response_and_server_survives() {
        use std::io::{Read, Write};
        let server = start(1);
        let addr = server.addr();
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GARBAGE\r\n\r\n").unwrap();
        let mut text = String::new();
        s.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
        // The single worker is still alive and serving.
        assert_eq!(client::get(addr, "/v1/models").unwrap().status, 200);
        server.shutdown();
    }

    #[test]
    fn shutdown_endpoint_drains_the_server() {
        let server = start(2);
        let addr = server.addr();
        let ack = client::post(addr, "/v1/shutdown", &Json::object::<&str>([])).unwrap();
        assert_eq!(ack.status, 200);
        assert_eq!(ack.body.get("ok").unwrap().as_bool(), Some(true));
        server.wait(); // must return: the endpoint stopped the server
                       // The port is released: a fresh bind to the same address works.
        TcpListener::bind(addr).expect("address released after shutdown");
    }

    #[test]
    fn concurrent_clients_share_one_session() {
        let server = start(4);
        let addr = server.addr();
        let body = Json::object([
            ("model_name", Json::from("sample")),
            ("nodes", Json::from(2usize)),
        ]);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let r = client::post(addr, "/v1/estimate", &body).unwrap();
                    assert_eq!(r.status, 200, "{}", r.body);
                });
            }
        });
        let metrics = client::get(addr, "/v1/metrics").unwrap().body;
        let pool = metrics.get("session_pool").unwrap();
        assert_eq!(
            pool.get("compiles").unwrap().as_f64(),
            Some(1.0),
            "{metrics}"
        );
        assert_eq!(pool.get("reuses").unwrap().as_f64(), Some(7.0), "{metrics}");
        server.shutdown();
    }
}
