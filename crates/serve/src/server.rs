//! The server core: one accept loop, a fixed pool of worker threads, a
//! shared handler state, graceful drain on shutdown.
//!
//! Architecture (std-only, no async runtime):
//!
//! ```text
//!  TcpListener ──accept──▶ mpsc channel ──recv──▶ worker 0..W
//!      │                                             │
//!      │  (accept thread)                            ├─ parse request(s)
//!      │                                             ├─ Handler::handle
//!   shutdown flag ◀── POST /v1/shutdown ─────────────┤   (keep-alive loop)
//!      │                                             └─ write response(s)
//!      └─ self-connect wakes accept; channel closes; workers drain
//! ```
//!
//! The accept thread only accepts and enqueues, so a slow client never
//! blocks accepting; workers pull connections off the channel, which
//! gives FIFO fairness and natural backpressure (the queue, not the
//! listener backlog, is where bursts wait). Connections are persistent
//! (HTTP/1.1 keep-alive): a worker serves requests off one socket until
//! the client closes, asks for `Connection: close`, stays idle past the
//! I/O timeout, or shutdown begins. Idle keep-alive sockets are polled
//! in short slices, so a parked worker notices the shutdown flag within
//! ~50 ms instead of holding the drain hostage for a full timeout.
//!
//! Shutdown — via [`ServerHandle::shutdown`] or `POST /v1/shutdown` —
//! flips the flag, wakes the accept thread with a loopback connect,
//! closes the channel, and joins every worker after it finished its
//! in-flight request: accepted connections are always answered, never
//! dropped.
//!
//! The loop is generic over a [`Handler`], so the same accept/worker/
//! keep-alive/drain machinery serves both the prediction service
//! ([`AppState`], via [`serve`]) and the scale-out router
//! (`prophet-router`, via [`serve_with`]).

use crate::api::{self, AppState};
use crate::http::{read_request, Request, Response};
use crate::pool::SessionPool;
use prophet_core::ArtifactStore;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default per-connection socket read/write timeout.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Slice length for polling idle keep-alive connections: the worker
/// waits for the next request in slices this long, checking the
/// shutdown flag between slices.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// Routes one parsed request to a response. Implemented by the
/// prediction service's [`AppState`] and the router's state; everything
/// socket-shaped (accept, keep-alive, timeouts, drain) lives here in
/// the server core and is shared.
pub trait Handler: Send + Sync + 'static {
    /// Route one request. The bool is the shutdown signal: `true` when
    /// the request asked the server to drain.
    fn handle(&self, req: &Request) -> (Response, bool);

    /// Record one handled request for metrics. `endpoint` is
    /// `(method, path)`, or `None` when the request never parsed.
    fn record(&self, endpoint: Option<(&str, &str)>, latency: Duration, error: bool);
}

impl Handler for AppState {
    fn handle(&self, req: &Request) -> (Response, bool) {
        api::handle(self, req)
    }

    fn record(&self, endpoint: Option<(&str, &str)>, latency: Duration, error: bool) {
        let counters = match endpoint {
            Some((method, path)) => self.metrics.endpoint(method, path),
            None => &self.metrics.other,
        };
        counters.record(latency, error);
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7077` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads; `0` selects the available parallelism.
    pub workers: usize,
    /// Per-connection socket read/write timeout. Without one, a client
    /// that connects and sends nothing (slow-loris, half-open probe)
    /// would park a worker in a blocking read forever — and a wedged
    /// worker can never be joined, so graceful drain would hang too.
    /// Also bounds how long an idle keep-alive connection is retained.
    pub io_timeout: Duration,
    /// Optional persistent artifact store (`prophet serve --store DIR`):
    /// the session pool warm-starts from it before the listener spawns,
    /// consults it on pool misses, and writes fresh compiles back, so a
    /// restarted server answers its first estimate with zero compiles.
    pub store: Option<Arc<ArtifactStore>>,
    /// Operator bearer token: when set, `POST /v1/shutdown` requires
    /// an `Authorization: Bearer <token>` header (401 otherwise).
    pub token: Option<String>,
    /// Store partition (`prophet serve --store DIR --partition FLEET`):
    /// `(fleet labels, own label)`. Warm-start then loads only the
    /// artifacts this shard owns under the fleet's consistent-hash
    /// ring, so N partitioned shards sharing one store each pre-load
    /// ~1/N of it instead of all of it. Requests for non-owned keys
    /// are still served (and cached) — partitioning shapes the
    /// warm-start set, not correctness.
    pub partition: Option<(Vec<String>, String)>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7077".to_string(),
            workers: 0,
            io_timeout: DEFAULT_IO_TIMEOUT,
            store: None,
            token: None,
            partition: None,
        }
    }
}

/// A running server: the bound address plus the handle to stop it.
pub struct ServerHandle<H: Handler = AppState> {
    addr: SocketAddr,
    state: Arc<H>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl<H: Handler> std::fmt::Debug for ServerHandle<H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Bind and start the prediction service in background threads. With a
/// store configured, the pool warm-starts from it *before* any worker
/// spawns, so the very first request can land on a pre-loaded session.
///
/// # Errors
/// Propagates the bind failure (port in use, bad address).
pub fn serve(config: &ServerConfig) -> io::Result<ServerHandle> {
    let mut pool = match &config.store {
        Some(store) => SessionPool::with_store(crate::pool::DEFAULT_CAPACITY, Arc::clone(store)),
        None => SessionPool::default(),
    };
    if let Some((fleet, own)) = &config.partition {
        let partition = crate::pool::StorePartition::new(fleet, own).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("partition shard `{own}` is not in the fleet {fleet:?}"),
            )
        })?;
        pool = pool.with_partition(partition);
    }
    // Lifetime counters survive restarts: the last checkpoint the
    // previous process wrote becomes this boot's baseline. Checkpoints
    // are keyed by the *bound* listen address (bind first, then load),
    // so shards sharing one artifact store keep separate lifetime
    // counters instead of clobbering each other's.
    let listener = TcpListener::bind(&config.addr)?;
    let instance = listener.local_addr()?.to_string();
    let baseline = config
        .store
        .as_ref()
        .and_then(|store| store.load_metrics(&instance))
        .unwrap_or_default();
    let state = Arc::new(AppState {
        pool,
        baseline,
        shutdown_token: config.token.clone(),
        ..AppState::default()
    });
    state.pool.warm_start();
    let mut handle = serve_on(listener, config, Arc::clone(&state))?;
    // With a store attached, a background thread checkpoints the
    // lifetime counters periodically (and once more on drain), so even
    // a hard kill loses at most one interval of counts.
    if state.pool.store().is_some() {
        let shutdown = Arc::clone(&handle.shutdown);
        handle.workers.push(std::thread::spawn(move || {
            checkpoint_loop(&state, &instance, &shutdown)
        }));
    }
    Ok(handle)
}

/// How often the checkpoint thread persists the lifetime counters.
const CHECKPOINT_INTERVAL: Duration = Duration::from_millis(500);

/// Periodically persist baseline + since-boot counters through the
/// artifact store, until shutdown (then write one final checkpoint).
/// Checkpoints carry *lifetime* values, so the next boot's baseline is
/// monotone no matter how many restarts preceded it.
fn checkpoint_loop(state: &AppState, instance: &str, shutdown: &AtomicBool) {
    let Some(store) = state.pool.store().cloned() else {
        return;
    };
    let mut last_written: Option<Vec<(String, u64)>> = None;
    loop {
        let deadline = Instant::now() + CHECKPOINT_INTERVAL;
        while Instant::now() < deadline && !shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(IDLE_POLL);
        }
        let stopping = shutdown.load(Ordering::SeqCst);
        let counters = state.lifetime_counters();
        if last_written.as_ref() != Some(&counters)
            && store.save_metrics(instance, &counters).is_ok()
        {
            state
                .checkpoints
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            last_written = Some(counters);
        }
        if stopping {
            return;
        }
    }
}

/// [`serve`] over a caller-built handler: the same accept loop, worker
/// pool, keep-alive handling and graceful drain, routing through `state`
/// instead of the prediction-service endpoints. This is what the router
/// binary runs on.
///
/// # Errors
/// Propagates the bind failure (port in use, bad address).
pub fn serve_with<H: Handler>(config: &ServerConfig, state: Arc<H>) -> io::Result<ServerHandle<H>> {
    let listener = TcpListener::bind(&config.addr)?;
    serve_on(listener, config, state)
}

/// [`serve_with`] over an already-bound listener — lets [`serve`] learn
/// the bound address (for checkpoint keying) before workers start.
fn serve_on<H: Handler>(
    listener: TcpListener,
    config: &ServerConfig,
    state: Arc<H>,
) -> io::Result<ServerHandle<H>> {
    let addr = listener.local_addr()?;
    let workers = if config.workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        config.workers
    };

    let shutdown = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));

    let io_timeout = config.io_timeout;
    let worker_handles: Vec<JoinHandle<()>> = (0..workers)
        .map(|_| {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || worker_loop(&rx, state.as_ref(), &shutdown, io_timeout))
        })
        .collect();

    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || accept_loop(listener, tx, &shutdown))
    };

    Ok(ServerHandle {
        addr,
        state,
        shutdown,
        accept_thread: Some(accept_thread),
        workers: worker_handles,
    })
}

fn accept_loop(listener: TcpListener, tx: Sender<TcpStream>, shutdown: &AtomicBool) {
    for stream in listener.incoming() {
        let stop = shutdown.load(Ordering::SeqCst);
        // Transient accept errors (EMFILE, aborted handshakes) must not
        // kill the server, so only `Ok` streams are enqueued — and even
        // the connection that woke us for shutdown is: it is usually
        // join_all's self-connect (closed without a request, so the
        // worker drops it quietly), but it can also be a real client
        // racing the drain, and accepted clients with a request already
        // in flight are answered, never dropped.
        if let Ok(stream) = stream {
            // Responses go out in full frames; Nagle would only add
            // delayed-ACK stalls between keep-alive requests.
            let _ = stream.set_nodelay(true);
            if tx.send(stream).is_err() {
                break;
            }
        }
        if stop {
            break;
        }
    }
    // Dropping `tx` closes the channel: workers drain what was already
    // accepted, then exit.
}

fn worker_loop<H: Handler>(
    rx: &Mutex<Receiver<TcpStream>>,
    state: &H,
    shutdown: &AtomicBool,
    io_timeout: Duration,
) {
    loop {
        // Hold the lock only to receive; handling runs unlocked.
        let stream = match rx.lock().expect("connection queue lock").recv() {
            Ok(stream) => stream,
            Err(_) => return, // channel closed: drained, shut down
        };
        handle_connection(stream, state, shutdown, io_timeout);
    }
}

/// What the idle wait observed on a connection.
enum Await {
    /// Request bytes are available.
    Data,
    /// Peer closed, idle deadline passed, drain began, or socket error:
    /// stop serving this connection.
    Closed,
}

/// Wait for the next request on an idle connection, polling in
/// [`IDLE_POLL`] slices so shutdown is noticed promptly. A connection
/// already carrying data when shutdown flips is still answered (its
/// response just closes the socket).
fn await_data(stream: &TcpStream, shutdown: &AtomicBool, io_timeout: Duration) -> Await {
    let deadline = Instant::now() + io_timeout;
    let mut byte = [0u8; 1];
    loop {
        let _ = stream.set_read_timeout(Some(IDLE_POLL));
        match stream.peek(&mut byte) {
            Ok(0) => return Await::Closed, // clean EOF between requests
            Ok(_) => return Await::Data,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) || Instant::now() >= deadline {
                    return Await::Closed;
                }
            }
            Err(_) => return Await::Closed,
        }
    }
}

fn handle_connection<H: Handler>(
    stream: TcpStream,
    state: &H,
    shutdown: &AtomicBool,
    io_timeout: Duration,
) {
    // One buffered reader for the whole connection, so bytes of a
    // pipelined next request are never lost between loop iterations;
    // responses are written to the unbuffered clone.
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = io::BufReader::new(read_half);
    let mut stream = stream;
    loop {
        // Wait for the next request (or the first — a fresh connection
        // with nothing to say costs at most `io_timeout`, never a
        // wedged worker). Skip the wait when the reader already holds
        // buffered bytes of the next request.
        if reader.buffer().is_empty() {
            match await_data(&stream, shutdown, io_timeout) {
                Await::Data => {}
                Await::Closed => return,
            }
        }
        // Bound every socket operation while a request is in flight.
        let _ = stream.set_read_timeout(Some(io_timeout));
        let _ = stream.set_write_timeout(Some(io_timeout));
        let started = Instant::now();
        let (mut response, stop, endpoint, client_keep_alive, trace) =
            match read_request(&mut reader) {
                Ok(request) => {
                    let keep_alive = request.keep_alive;
                    let endpoint = (request.method.clone(), request.path.clone());
                    let (response, stop) = state.handle(&request);
                    (response, stop, Some(endpoint), keep_alive, request.trace)
                }
                Err(e) => (
                    Response::json(
                        e.status,
                        crate::json::Json::object([("error", crate::json::Json::from(e.message))])
                            .encode(),
                    ),
                    false,
                    None,
                    // A parse error may have desynced the request
                    // framing; never reuse the connection after one.
                    false,
                    // The request never parsed, so no client ID could be
                    // adopted — but the error is still traceable.
                    crate::http::generate_trace(),
                ),
            };
        let error = response.status >= 400;
        // Every response — success, error, even a parse failure —
        // carries the trace ID in its header, and error envelopes name
        // it in the body so a logged error alone finds the journal row.
        if error {
            stamp_trace(&mut response, &trace);
        }
        response.trace = Some(trace);
        // Record metrics *before* the response bytes become visible: a
        // client that sees its response and immediately asks
        // /v1/metrics must find its own request already counted.
        state.record(
            endpoint.as_ref().map(|(m, p)| (m.as_str(), p.as_str())),
            started.elapsed(),
            error,
        );
        if stop {
            shutdown.store(true, Ordering::SeqCst);
        }
        let keep_alive = client_keep_alive && !stop && !shutdown.load(Ordering::SeqCst);
        // A dead client is the client's problem; the worker moves on.
        if response
            .write_with_connection(&mut stream, keep_alive)
            .is_err()
            || !keep_alive
        {
            return;
        }
    }
}

/// Add a `trace_id` member to a JSON error envelope (unless the body
/// already names one — the router forwards shard envelopes verbatim).
fn stamp_trace(response: &mut Response, trace: &str) {
    if let Ok(crate::json::Json::Object(mut members)) = crate::json::parse(&response.body) {
        if !members.iter().any(|(key, _)| key == "trace_id") {
            members.push(("trace_id".to_string(), crate::json::Json::from(trace)));
            response.body = crate::json::Json::Object(members).encode();
        }
    }
}

impl<H: Handler> ServerHandle<H> {
    /// The bound address (the actual port when configured with `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared handler state (pool + metrics) — for in-process
    /// assertions in tests and benches.
    pub fn state(&self) -> &H {
        &self.state
    }

    /// The shutdown flag, for auxiliary threads (e.g. the router's
    /// health prober) that should stop when the server drains.
    pub fn shutdown_signal(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// True once shutdown has been requested (e.g. `POST /v1/shutdown`).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Block until a shutdown request arrives (`POST /v1/shutdown`),
    /// then drain: all in-flight requests are answered before this
    /// returns. This is what `prophet serve` parks on.
    pub fn wait(mut self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(25));
        }
        self.join_all();
    }

    /// Request shutdown and drain: stops accepting, answers what was
    /// already accepted, joins every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.join_all();
    }

    /// Join every thread. Callers guarantee the shutdown flag is set
    /// before this runs (so the wake connects below cannot be mistaken
    /// for client traffic that deserves an answer).
    fn join_all(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept_thread.take() {
            // Wake the accept loop so it observes the flag; it breaks on
            // the first iteration after the store above. Retry until it
            // exits in case a racing real connection consumed the wake.
            while !accept.is_finished() {
                let _ = TcpStream::connect(self.addr);
                std::thread::sleep(Duration::from_millis(2));
            }
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl<H: Handler> Drop for ServerHandle<H> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.join_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use crate::json::Json;

    fn start(workers: usize) -> ServerHandle {
        serve(&ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            ..Default::default()
        })
        .expect("bind port 0")
    }

    #[test]
    fn silent_clients_time_out_instead_of_wedging_workers() {
        // One worker, tiny I/O timeout: a client that connects and sends
        // nothing must not park that worker forever (slow-loris).
        let server = serve(&ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            io_timeout: Duration::from_millis(50),
            ..Default::default()
        })
        .expect("bind port 0");
        let addr = server.addr();
        let _silent = TcpStream::connect(addr).unwrap(); // never writes
        let _silent2 = TcpStream::connect(addr).unwrap();
        // The single worker frees itself after the timeout and serves
        // real traffic again.
        let r = client::get(addr, "/v1/models").unwrap();
        assert_eq!(r.status, 200);
        // Graceful drain still works with the stalled sockets around.
        client::post(addr, "/v1/shutdown", &Json::object::<&str>([])).unwrap();
        server.wait();
    }

    #[test]
    fn serves_models_and_metrics() {
        let server = start(2);
        let addr = server.addr();
        let models = client::get(addr, "/v1/models").unwrap();
        assert_eq!(models.status, 200);
        assert_eq!(
            models.body.get("models").unwrap().as_array().unwrap().len(),
            10
        );
        let metrics = client::get(addr, "/v1/metrics").unwrap();
        assert_eq!(metrics.status, 200);
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_connection() {
        let server = start(1);
        let addr = server.addr();
        let mut conn = client::Connection::connect(addr).expect("connect");
        for _ in 0..4 {
            let r = conn.get("/v1/models").expect("keep-alive request");
            assert_eq!(r.status, 200);
        }
        assert_eq!(
            conn.reconnects(),
            0,
            "four requests must ride one TCP connection"
        );
        // All four requests were counted — they really arrived.
        let metrics = client::get(addr, "/v1/metrics").unwrap().body;
        let models = metrics.get("endpoints").unwrap().get("models").unwrap();
        assert_eq!(models.get("requests").unwrap().as_f64(), Some(4.0));
        server.shutdown();
    }

    #[test]
    fn drain_closes_idle_keep_alive_connections_quickly() {
        let server = start(2);
        let addr = server.addr();
        // Park an idle keep-alive connection on a worker.
        let mut conn = client::Connection::connect(addr).unwrap();
        assert_eq!(conn.get("/v1/models").unwrap().status, 200);
        // Drain must not wait out the 10 s default io_timeout on the
        // idle connection.
        let started = Instant::now();
        client::post(addr, "/v1/shutdown", &Json::object::<&str>([])).unwrap();
        server.wait();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "drain stalled on an idle keep-alive connection: {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn malformed_http_gets_an_error_response_and_server_survives() {
        use std::io::{Read, Write};
        let server = start(1);
        let addr = server.addr();
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GARBAGE\r\n\r\n").unwrap();
        let mut text = String::new();
        s.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
        // The single worker is still alive and serving.
        assert_eq!(client::get(addr, "/v1/models").unwrap().status, 200);
        server.shutdown();
    }

    #[test]
    fn shutdown_endpoint_drains_the_server() {
        let server = start(2);
        let addr = server.addr();
        let ack = client::post(addr, "/v1/shutdown", &Json::object::<&str>([])).unwrap();
        assert_eq!(ack.status, 200);
        assert_eq!(ack.body.get("ok").unwrap().as_bool(), Some(true));
        server.wait(); // must return: the endpoint stopped the server
                       // The port is released: a fresh bind to the same address works.
        TcpListener::bind(addr).expect("address released after shutdown");
    }

    #[test]
    fn shutdown_with_token_rejects_unauthenticated_requests() {
        let server = serve(&ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            token: Some("s3cret".to_string()),
            ..Default::default()
        })
        .expect("bind port 0");
        let addr = server.addr();
        // No token, wrong scheme, wrong token: all 401, server stays up.
        let bare = client::post(addr, "/v1/shutdown", &Json::object::<&str>([])).unwrap();
        assert_eq!(bare.status, 401, "{}", bare.body);
        let mut conn = client::Connection::connect(addr).unwrap();
        for auth in ["Basic s3cret", "Bearer wrong"] {
            let r = conn
                .send(
                    "POST",
                    "/v1/shutdown",
                    Some("{}"),
                    &[("authorization", auth)],
                )
                .unwrap();
            assert_eq!(r.status, 401, "{auth}: {}", r.body);
        }
        assert_eq!(client::get(addr, "/v1/models").unwrap().status, 200);
        // The right token drains it.
        let ok = conn
            .send(
                "POST",
                "/v1/shutdown",
                Some("{}"),
                &[("authorization", "Bearer s3cret")],
            )
            .unwrap();
        assert_eq!(ok.status, 200, "{}", ok.body);
        server.wait();
    }

    #[test]
    fn partition_requires_own_shard_in_the_fleet() {
        let err = serve(&ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            partition: Some((vec!["10.0.0.1:7077".into()], "10.0.0.2:7077".into())),
            ..Default::default()
        })
        .expect_err("own label outside the fleet must refuse to start");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn concurrent_clients_share_one_session() {
        let server = start(4);
        let addr = server.addr();
        let body = Json::object([
            ("model_name", Json::from("sample")),
            ("nodes", Json::from(2usize)),
        ]);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let r = client::post(addr, "/v1/estimate", &body).unwrap();
                    assert_eq!(r.status, 200, "{}", r.body);
                });
            }
        });
        let metrics = client::get(addr, "/v1/metrics").unwrap().body;
        let pool = metrics.get("session_pool").unwrap();
        assert_eq!(
            pool.get("compiles").unwrap().as_f64(),
            Some(1.0),
            "{metrics}"
        );
        assert_eq!(pool.get("reuses").unwrap().as_f64(), Some(7.0), "{metrics}");
        server.shutdown();
    }
}
