//! A minimal JSON layer: encoder + recursive-descent decoder.
//!
//! The workspace is std-only by design (the same reason `prophet-xml`
//! exists instead of a crates.io XML dependency), so the service speaks
//! JSON through this purpose-built module rather than serde. Supported:
//! the full JSON value grammar — objects, arrays, strings with the
//! standard escapes (including `\uXXXX` and surrogate pairs), numbers,
//! booleans, null.
//!
//! Decoder hardening, because this parses bytes straight off a socket:
//!
//! * a **depth limit** ([`MAX_DEPTH`]) bounds recursion on nested
//!   arrays/objects,
//! * trailing garbage after the top-level value is rejected,
//! * bad escapes, lone surrogates, unterminated strings and malformed
//!   numbers are errors with a byte offset, never panics.
//!
//! Encoding is deterministic: object members keep insertion order, and
//! numbers use Rust's shortest-roundtrip `f64` formatting, so
//! `parse(&v.encode())` reproduces `v` exactly for any finite value
//! (pinned by the round-trip proptest suite).

use std::collections::BTreeSet;
use std::fmt;

/// Maximum nesting depth the decoder accepts (arrays + objects).
pub const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Number(f64),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved on encode.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (`None` elsewhere or when absent).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Build an object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(members: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Encode to compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(n) => {
                // JSON has no NaN/Infinity literal; encode those as null
                // (the service never produces them, but the encoder must
                // not emit unparsable text for any input).
                use std::fmt::Write as _;
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.trunc() == *n
                    && n.abs() <= 9_007_199_254_740_992.0
                    && !(*n == 0.0 && n.is_sign_negative())
                {
                    // Counters and histogram buckets dominate the
                    // service's documents; integer formatting skips
                    // the float-to-shortest-decimal path entirely.
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::String(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Number(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Number(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Number(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::String(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::String(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Self {
        Json::Array(items.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A decode failure: what went wrong and the byte offset it was seen at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the top-level value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{text}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members: Vec<(String, Json)> = Vec::new();
        // Duplicate keys are rejected outright: `get` returns the first
        // match, so accepting duplicates would silently drop members of
        // attacker-controlled request bodies. Small objects (the common
        // case) use a linear scan; past the threshold the keys spill
        // into a set so a huge adversarial object stays O(n log n).
        const SEEN_SPILL: usize = 32;
        let mut seen: BTreeSet<String> = BTreeSet::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            let duplicate = if members.len() < SEEN_SPILL {
                members.iter().any(|(k, _)| *k == key)
            } else {
                if seen.is_empty() {
                    seen.extend(members.iter().map(|(k, _)| k.clone()));
                }
                !seen.insert(key.clone())
            };
            if duplicate {
                return Err(self.err(format!("duplicate object key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            self.pos -= 1;
                            return Err(self.err(format!("bad escape `\\{}`", other as char)));
                        }
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Bulk-copy the run of plain bytes up to the next
                    // quote, escape, or control byte. Continuation
                    // bytes are all >= 0x80, so the run never splits a
                    // UTF-8 scalar — and validating only the run (not
                    // the whole remaining input per character) keeps
                    // parsing linear in document size.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.err("non-hex digit in \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: must be followed by `\uDC00..DFFF`.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(self.err("high surrogate not followed by a low surrogate"));
                }
                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("lone high surrogate"));
        }
        if (0xDC00..0xE000).contains(&hi) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let mut integral = true;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone or a nonzero-led digit run (JSON
        // forbids leading zeros).
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        // Plain integers (the bulk of metrics/journal documents) skip
        // the decimal-float parser; i64 overflow falls through to it.
        if integral && text != "-0" {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Number(i as f64));
            }
        }
        let n: f64 = text
            .parse()
            .map_err(|_| self.err("unrepresentable number"))?;
        Ok(Json::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::Number(0.0)),
            ("-1.5e3", Json::Number(-1500.0)),
            ("\"hi\"", Json::String("hi".into())),
        ] {
            assert_eq!(parse(text).unwrap(), value, "{text}");
        }
    }

    #[test]
    fn nested_values_parse_and_reencode() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":true}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(parse(&v.encode()).unwrap(), v);
    }

    #[test]
    fn escapes_decode_and_reencode() {
        let v = parse(r#""\u0041\u00e9\ud83d\ude00\t\\\"""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀\t\\\""));
        assert_eq!(parse(&v.encode()).unwrap(), v);
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // One inside the limit still parses.
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        parse(&ok).unwrap();
    }

    #[test]
    fn trailing_garbage_rejected() {
        for text in ["1 x", "{} {}", "null,", "\"a\" \"b\""] {
            let err = parse(text).unwrap_err();
            assert!(err.message.contains("trailing"), "{text}: {err}");
        }
    }

    #[test]
    fn malformed_inputs_are_errors_not_panics() {
        for text in [
            "",
            "{",
            "[",
            "\"",
            "{\"a\"}",
            "{\"a\":}",
            "[1,]",
            "01",
            "1.",
            "1e",
            "-",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"\\ud800\\u0041\"",
            "tru",
            "+1",
            "{\"a\":1,\"a\":2}",
            "nullnull",
            "\u{1}",
        ] {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn object_helpers() {
        let v = Json::object([("x", Json::from(1.0)), ("y", Json::from("z"))]);
        assert_eq!(v.get("x").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("x").unwrap().as_usize(), Some(1));
        assert_eq!(Json::Number(1.5).as_usize(), None);
        assert_eq!(Json::Number(-1.0).as_usize(), None);
        assert!(v.get("missing").is_none());
        assert_eq!(v.encode(), r#"{"x":1,"y":"z"}"#);
    }
}
