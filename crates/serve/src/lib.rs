//! # prophet-serve
//!
//! The prediction **service** layer: a long-running, concurrent HTTP
//! server over the compile-once engine, so "what if" questions cost a
//! request, not a process start.
//!
//! The paper's workflow is interactive by intent — check a UML
//! performance model once, then probe many machine configurations. The
//! library stack already makes the second half cheap
//! ([`Session`](prophet_core::Session) compiles once;
//! its [`ElaborationCache`](prophet_core::ElaborationCache) flattens
//! each SP point once); this crate keeps those artifacts **alive
//! between questions**:
//!
//! * [`pool`] — the [`SessionPool`]: sessions keyed
//!   by `(model digest, MCF digest)` content hashes, compiled on first
//!   request, shared by every connection and worker thread afterwards.
//!   **Why reuse is cheap:** a pooled hit skips parse → check →
//!   `to_cpp` → `to_program` entirely, and lands on the session's
//!   elaboration cache, so a repeated estimate pays one intern-table
//!   lookup plus the evaluation itself (see the elab-cache docs in
//!   `prophet_estimator::elab` for the keying and memory bounds).
//!   With a persistent artifact store attached
//!   (`prophet_core::store`, CLI `prophet serve --store DIR`), reuse
//!   survives restarts too: the pool warm-starts from disk at boot,
//!   consults the store on misses, and writes fresh compiles back,
//! * [`json`] — a std-only JSON encoder + hardened recursive-descent
//!   decoder (depth-limited, escape-complete), mirroring how
//!   `prophet-xml` stands in for an XML dependency,
//! * [`http`] — a bounded HTTP/1.1 subset over `std::net`,
//! * [`server`] — accept loop + fixed worker pool + graceful drain,
//! * [`api`] — the endpoints (`/v1/check`, `/v1/estimate`, `/v1/sweep`,
//!   `/v1/models`, `/v1/metrics`, `/v1/shutdown`),
//! * [`metrics`] — lock-free request counters and latency histograms,
//!   including the pool/elab counters that let a load test *prove* the
//!   compile-once contract over the wire,
//! * [`spans`] — per-request phase spans (parse, pool, store load,
//!   compile, evaluate, encode) in a lock-free ring journal behind
//!   `GET /v1/requests`, keyed by the `X-Prophet-Trace` trace ID every
//!   request carries (see `docs/OBSERVABILITY.md`),
//! * [`prometheus`] — text-exposition rendering for
//!   `GET /v1/metrics?format=prometheus`,
//! * [`client`] — the tiny blocking client the tests, benches and CI
//!   smoke checks drive the real socket with.
//!
//! ## Quickstart
//!
//! ```
//! use prophet_serve::{client, json::Json, server};
//!
//! let handle = server::serve(&server::ServerConfig {
//!     addr: "127.0.0.1:0".into(), // ephemeral port
//!     workers: 2,
//!     ..Default::default()
//! })?;
//! let addr = handle.addr();
//!
//! let body = Json::object([
//!     ("model_name", Json::from("jacobi")),
//!     ("nodes", Json::from(4usize)),
//!     ("backend", Json::from("analytic")),
//! ]);
//! let first = client::post(addr, "/v1/estimate", &body).unwrap();
//! assert_eq!(first.status, 200);
//!
//! // The second request reuses the compiled session.
//! let second = client::post(addr, "/v1/estimate", &body).unwrap();
//! assert_eq!(
//!     second.body.get("session").unwrap().get("reused").unwrap().as_bool(),
//!     Some(true)
//! );
//! handle.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod api;
pub mod client;
pub mod http;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod prometheus;
pub mod server;
pub mod spans;

pub use json::Json;
pub use pool::{PoolStats, SessionPool};
pub use server::{serve, serve_with, Handler, ServerConfig, ServerHandle};
