//! Service metrics: lock-free request counters and latency histograms,
//! surfaced over the wire by `GET /v1/metrics`.
//!
//! Everything here is an atomic counter — recording a request costs a
//! handful of relaxed `fetch_add`s, so the hot path never takes a lock
//! for observability. The histogram uses fixed log-spaced upper bounds
//! (10µs .. 10s), which brackets everything from a cache-hit analytic
//! estimate to a cold compile + big simulated sweep.

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Histogram bucket upper bounds, in microseconds (log-spaced); the
/// final implicit bucket is overflow.
pub const BUCKET_BOUNDS_US: [u64; 7] = [10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// A latency histogram with fixed log-spaced buckets.
#[derive(Debug, Default)]
pub struct Histogram {
    counts: [AtomicU64; BUCKET_BOUNDS_US.len() + 1],
    total_us: AtomicU64,
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, latency: Duration) {
        self.record_us(latency.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Record one observation given directly in microseconds.
    pub fn record_us(&self, us: u64) {
        let bucket = BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters, for quantile estimation
    /// and Prometheus rendering.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed)),
            total_us: self.total_us.load(Ordering::Relaxed),
        }
    }

    fn to_json(&self) -> Json {
        self.snapshot().to_json()
    }
}

/// Non-atomic copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (one overflow bucket past the last bound).
    pub counts: [u64; BUCKET_BOUNDS_US.len() + 1],
    /// Sum of all recorded values, in microseconds.
    pub total_us: u64,
}

impl HistogramSnapshot {
    /// Total number of recorded observations.
    pub fn observations(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Estimate the `q`-quantile (0 < q <= 1) in microseconds, or
    /// `None` when nothing has been recorded.
    ///
    /// The buckets are log-spaced, so interpolation within a bucket is
    /// geometric (`lo * (hi/lo)^f`) rather than linear — linear
    /// interpolation over a decade-wide bucket would systematically
    /// overestimate low quantiles. The first bucket interpolates over
    /// `(bound/10, bound]` and the overflow bucket over one further
    /// decade, keeping the decade spacing uniform at the edges.
    pub fn quantile_us(&self, q: f64) -> Option<f64> {
        quantile_from_counts(&BUCKET_BOUNDS_US, &self.counts, q)
    }

    /// The histogram section of the metrics body, including quantile
    /// estimates once observations exist.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("bounds_us", Json::from(BUCKET_BOUNDS_US.to_vec())),
            ("counts", Json::from(self.counts.to_vec())),
            ("total_us", Json::from(self.total_us)),
            ("observations", Json::from(self.observations())),
        ];
        if let (Some(p50), Some(p90), Some(p99)) = (
            self.quantile_us(0.50),
            self.quantile_us(0.90),
            self.quantile_us(0.99),
        ) {
            members.push(("p50_us", Json::from(p50)));
            members.push(("p90_us", Json::from(p90)));
            members.push(("p99_us", Json::from(p99)));
        }
        Json::object(members)
    }
}

/// Quantile estimation over log-bucketed counts: `bounds` are the
/// bucket upper bounds, `counts` has one extra overflow entry. Shared
/// by the server and by `prophet metrics` reading a remote histogram.
pub fn quantile_from_counts(bounds: &[u64], counts: &[u64], q: f64) -> Option<f64> {
    let n: u64 = counts.iter().sum();
    if n == 0 || !(0.0..=1.0).contains(&q) || q == 0.0 {
        return None;
    }
    let rank = q * n as f64;
    let mut cumulative = 0u64;
    for (i, &count) in counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let next = cumulative + count;
        if rank <= next as f64 {
            let fraction = (rank - cumulative as f64) / count as f64;
            // Bucket i spans (lo, hi]: log-spaced decades, extended one
            // decade below the first bound and one above the last.
            let hi = bounds
                .get(i)
                .copied()
                .unwrap_or_else(|| bounds.last().map_or(10, |&last| last.saturating_mul(10)))
                as f64;
            let lo = if i == 0 {
                hi / 10.0
            } else {
                bounds[i - 1] as f64
            };
            return Some(lo * (hi / lo).powf(fraction));
        }
        cumulative = next;
    }
    None
}

/// Counters for one endpoint.
#[derive(Debug, Default)]
pub struct EndpointMetrics {
    requests: AtomicU64,
    errors: AtomicU64,
    latency: Histogram,
}

impl EndpointMetrics {
    /// Record one handled request and whether it was answered with an
    /// error status.
    pub fn record(&self, latency: Duration, error: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record(latency);
    }

    /// Requests recorded so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Error responses recorded so far.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the latency histogram.
    pub fn latency_snapshot(&self) -> HistogramSnapshot {
        self.latency.snapshot()
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("requests", Json::from(self.requests())),
            ("errors", Json::from(self.errors())),
            ("latency", self.latency.to_json()),
        ])
    }
}

/// All service metrics.
#[derive(Debug, Default)]
pub struct Metrics {
    /// `POST /v1/check`.
    pub check: EndpointMetrics,
    /// `POST /v1/estimate`.
    pub estimate: EndpointMetrics,
    /// `POST /v1/sweep`.
    pub sweep: EndpointMetrics,
    /// `POST /v1/optimize`.
    pub optimize: EndpointMetrics,
    /// `GET /v1/models`.
    pub models: EndpointMetrics,
    /// `GET /v1/metrics`.
    pub metrics: EndpointMetrics,
    /// `GET /v1/requests` (the span journal).
    pub requests: EndpointMetrics,
    /// Everything else (404s, bad requests, shutdown).
    pub other: EndpointMetrics,
}

/// Endpoint labels, in the order [`Metrics::to_json`] emits them. The
/// span recorder stores an index into this table per journal entry.
pub const ENDPOINT_NAMES: [&str; 8] = [
    "check", "estimate", "sweep", "optimize", "models", "metrics", "requests", "other",
];

/// The [`ENDPOINT_NAMES`] index for a request, `other` as fallback.
pub fn endpoint_index(method: &str, path: &str) -> usize {
    match (method, path) {
        ("POST", "/v1/check") => 0,
        ("POST", "/v1/estimate") => 1,
        ("POST", "/v1/sweep") => 2,
        ("POST", "/v1/optimize") => 3,
        ("GET", "/v1/models") => 4,
        ("GET", "/v1/metrics") => 5,
        ("GET", "/v1/requests") => 6,
        _ => ENDPOINT_NAMES.len() - 1,
    }
}

impl Metrics {
    /// The endpoint counters for a request path, or `other`.
    pub fn endpoint(&self, method: &str, path: &str) -> &EndpointMetrics {
        self.by_index(endpoint_index(method, path))
    }

    /// The endpoint counters for an [`ENDPOINT_NAMES`] index.
    pub fn by_index(&self, index: usize) -> &EndpointMetrics {
        match index {
            0 => &self.check,
            1 => &self.estimate,
            2 => &self.sweep,
            3 => &self.optimize,
            4 => &self.models,
            5 => &self.metrics,
            6 => &self.requests,
            _ => &self.other,
        }
    }

    /// The per-endpoint section of the `/v1/metrics` body.
    pub fn to_json(&self) -> Json {
        Json::object(
            ENDPOINT_NAMES
                .iter()
                .enumerate()
                .map(|(i, &name)| (name, self.by_index(i).to_json())),
        )
    }

    /// Flat `name -> value` counter pairs, the unit of the persistent
    /// metrics checkpoint. Only monotone counters belong here — gauges
    /// and histograms are since-boot by design.
    pub fn flat_counters(&self) -> Vec<(String, u64)> {
        let mut out = Vec::with_capacity(ENDPOINT_NAMES.len() * 2);
        for (i, name) in ENDPOINT_NAMES.iter().enumerate() {
            let ep = self.by_index(i);
            out.push((format!("endpoints.{name}.requests"), ep.requests()));
            out.push((format!("endpoints.{name}.errors"), ep.errors()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_latency() {
        let h = Histogram::default();
        h.record(Duration::from_micros(5)); // bucket 0
        h.record(Duration::from_micros(50)); // bucket 1
        h.record(Duration::from_secs(100)); // overflow bucket
        let json = h.to_json();
        let counts = json.get("counts").unwrap().as_array().unwrap();
        assert_eq!(counts[0].as_f64(), Some(1.0));
        assert_eq!(counts[1].as_f64(), Some(1.0));
        assert_eq!(counts.last().unwrap().as_f64(), Some(1.0));
        assert_eq!(json.get("observations").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn quantiles_interpolate_geometrically_within_a_bucket() {
        // 100 observations, all in the (10, 100]µs bucket: the p50 sits
        // halfway through the bucket in log space, i.e. 10 * 10^0.5.
        let h = Histogram::default();
        for _ in 0..100 {
            h.record_us(50);
        }
        let snap = h.snapshot();
        let p50 = snap.quantile_us(0.50).unwrap();
        assert!((p50 - 10.0 * 10f64.sqrt()).abs() < 1e-9, "{p50}");
        // p100 is the bucket's upper bound exactly.
        let p100 = snap.quantile_us(1.0).unwrap();
        assert!((p100 - 100.0).abs() < 1e-9, "{p100}");
    }

    #[test]
    fn quantiles_pin_a_known_mixed_distribution() {
        // 90 fast (≤10µs bucket) + 10 slow ((1ms, 10ms] bucket):
        // p50 lands mid-way (in log space) through the fast bucket,
        // p99 lands 90% through the slow bucket.
        let h = Histogram::default();
        for _ in 0..90 {
            h.record_us(5);
        }
        for _ in 0..10 {
            h.record_us(5_000);
        }
        let snap = h.snapshot();
        // Fast bucket spans (1, 10]: rank 50 of 90 → fraction 5/9.
        let p50 = snap.quantile_us(0.50).unwrap();
        assert!((p50 - 10f64.powf(5.0 / 9.0)).abs() < 1e-9, "{p50}");
        // Slow bucket spans (1_000, 10_000]: rank 99 is the 9th of its
        // 10 observations → fraction 0.9.
        let p99 = snap.quantile_us(0.99).unwrap();
        assert!((p99 - 1_000.0 * 10f64.powf(0.9)).abs() < 1e-6, "{p99}");
        // Empty histograms and q=0 yield no estimate.
        assert!(Histogram::default().snapshot().quantile_us(0.5).is_none());
        assert!(snap.quantile_us(0.0).is_none());
    }

    #[test]
    fn quantiles_extend_one_decade_into_the_overflow_bucket() {
        let h = Histogram::default();
        for _ in 0..10 {
            h.record_us(50_000_000); // past the 10s bound
        }
        let snap = h.snapshot();
        // Overflow spans (1e7, 1e8] by convention: p100 = 1e8.
        let p100 = snap.quantile_us(1.0).unwrap();
        assert!((p100 - 1e8).abs() < 1e-3, "{p100}");
    }

    #[test]
    fn histogram_json_includes_quantiles_once_observed() {
        let h = Histogram::default();
        assert!(h.to_json().get("p50_us").is_none(), "empty: no estimate");
        h.record_us(50);
        let json = h.to_json();
        for key in ["p50_us", "p90_us", "p99_us"] {
            assert!(json.get(key).unwrap().as_f64().is_some(), "{key}");
        }
    }

    #[test]
    fn endpoint_names_round_trip_through_indices() {
        let m = Metrics::default();
        m.endpoint("GET", "/v1/requests")
            .record(Duration::ZERO, false);
        assert_eq!(m.requests.requests(), 1, "journal hits its own counter");
        for &name in &ENDPOINT_NAMES {
            assert!(m.to_json().get(name).is_some(), "{name}");
        }
        assert_eq!(endpoint_index("GET", "/v1/requests"), 6);
        assert_eq!(endpoint_index("PUT", "/nope"), ENDPOINT_NAMES.len() - 1);
        // Flat counters cover every endpoint twice (requests + errors).
        let flat = m.flat_counters();
        assert_eq!(flat.len(), ENDPOINT_NAMES.len() * 2);
        let journal = flat
            .iter()
            .find(|(n, _)| n == "endpoints.requests.requests")
            .unwrap();
        assert_eq!(journal.1, 1);
    }

    #[test]
    fn endpoint_routing_and_counts() {
        let m = Metrics::default();
        m.endpoint("POST", "/v1/estimate")
            .record(Duration::from_micros(3), false);
        m.endpoint("POST", "/v1/estimate")
            .record(Duration::from_micros(3), true);
        m.endpoint("GET", "/nope").record(Duration::ZERO, true);
        assert_eq!(m.estimate.requests(), 2);
        assert_eq!(m.other.requests(), 1);
        let json = m.to_json();
        let est = json.get("estimate").unwrap();
        assert_eq!(est.get("requests").unwrap().as_f64(), Some(2.0));
        assert_eq!(est.get("errors").unwrap().as_f64(), Some(1.0));
    }
}
