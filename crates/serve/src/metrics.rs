//! Service metrics: lock-free request counters and latency histograms,
//! surfaced over the wire by `GET /v1/metrics`.
//!
//! Everything here is an atomic counter — recording a request costs a
//! handful of relaxed `fetch_add`s, so the hot path never takes a lock
//! for observability. The histogram uses fixed log-spaced upper bounds
//! (10µs .. 10s), which brackets everything from a cache-hit analytic
//! estimate to a cold compile + big simulated sweep.

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Histogram bucket upper bounds, in microseconds (log-spaced); the
/// final implicit bucket is overflow.
pub const BUCKET_BOUNDS_US: [u64; 7] = [10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// A latency histogram with fixed log-spaced buckets.
#[derive(Debug, Default)]
pub struct Histogram {
    counts: [AtomicU64; BUCKET_BOUNDS_US.len() + 1],
    total_us: AtomicU64,
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let bucket = BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    fn to_json(&self) -> Json {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let observations: u64 = counts.iter().sum();
        Json::object([
            ("bounds_us", Json::from(BUCKET_BOUNDS_US.to_vec())),
            ("counts", Json::from(counts)),
            (
                "total_us",
                Json::from(self.total_us.load(Ordering::Relaxed)),
            ),
            ("observations", Json::from(observations)),
        ])
    }
}

/// Counters for one endpoint.
#[derive(Debug, Default)]
pub struct EndpointMetrics {
    requests: AtomicU64,
    errors: AtomicU64,
    latency: Histogram,
}

impl EndpointMetrics {
    /// Record one handled request and whether it was answered with an
    /// error status.
    pub fn record(&self, latency: Duration, error: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record(latency);
    }

    /// Requests recorded so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("requests", Json::from(self.requests())),
            ("errors", Json::from(self.errors.load(Ordering::Relaxed))),
            ("latency", self.latency.to_json()),
        ])
    }
}

/// All service metrics.
#[derive(Debug, Default)]
pub struct Metrics {
    /// `POST /v1/check`.
    pub check: EndpointMetrics,
    /// `POST /v1/estimate`.
    pub estimate: EndpointMetrics,
    /// `POST /v1/sweep`.
    pub sweep: EndpointMetrics,
    /// `POST /v1/optimize`.
    pub optimize: EndpointMetrics,
    /// `GET /v1/models`.
    pub models: EndpointMetrics,
    /// `GET /v1/metrics`.
    pub metrics: EndpointMetrics,
    /// Everything else (404s, bad requests, shutdown).
    pub other: EndpointMetrics,
}

impl Metrics {
    /// The endpoint counters for a request path, or `other`.
    pub fn endpoint(&self, method: &str, path: &str) -> &EndpointMetrics {
        match (method, path) {
            ("POST", "/v1/check") => &self.check,
            ("POST", "/v1/estimate") => &self.estimate,
            ("POST", "/v1/sweep") => &self.sweep,
            ("POST", "/v1/optimize") => &self.optimize,
            ("GET", "/v1/models") => &self.models,
            ("GET", "/v1/metrics") => &self.metrics,
            _ => &self.other,
        }
    }

    /// The per-endpoint section of the `/v1/metrics` body.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("check", self.check.to_json()),
            ("estimate", self.estimate.to_json()),
            ("sweep", self.sweep.to_json()),
            ("optimize", self.optimize.to_json()),
            ("models", self.models.to_json()),
            ("metrics", self.metrics.to_json()),
            ("other", self.other.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_latency() {
        let h = Histogram::default();
        h.record(Duration::from_micros(5)); // bucket 0
        h.record(Duration::from_micros(50)); // bucket 1
        h.record(Duration::from_secs(100)); // overflow bucket
        let json = h.to_json();
        let counts = json.get("counts").unwrap().as_array().unwrap();
        assert_eq!(counts[0].as_f64(), Some(1.0));
        assert_eq!(counts[1].as_f64(), Some(1.0));
        assert_eq!(counts.last().unwrap().as_f64(), Some(1.0));
        assert_eq!(json.get("observations").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn endpoint_routing_and_counts() {
        let m = Metrics::default();
        m.endpoint("POST", "/v1/estimate")
            .record(Duration::from_micros(3), false);
        m.endpoint("POST", "/v1/estimate")
            .record(Duration::from_micros(3), true);
        m.endpoint("GET", "/nope").record(Duration::ZERO, true);
        assert_eq!(m.estimate.requests(), 2);
        assert_eq!(m.other.requests(), 1);
        let json = m.to_json();
        let est = json.get("estimate").unwrap();
        assert_eq!(est.get("requests").unwrap().as_f64(), Some(2.0));
        assert_eq!(est.get("errors").unwrap().as_f64(), Some(1.0));
    }
}
