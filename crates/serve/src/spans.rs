//! Per-request phase spans and the lock-free journal behind
//! `GET /v1/requests`.
//!
//! Each handled request accumulates a [`SpanSet`]: microseconds spent
//! in each pipeline phase (parse, pool lookup, store load, compile,
//! evaluate, encode) plus the elaboration-cache hit/miss deltas the
//! request caused. Completed sets land in a [`SpanRecorder`] — a
//! fixed-size ring of all-atomic slots claimed by an atomic cursor, so
//! recording never takes a lock and never allocates: a busy server
//! keeps the newest `capacity` requests, and a total `recorded` counter
//! is exact even when the ring wraps.
//!
//! Slot writes use a seqlock: the sequence number goes odd while a
//! writer fills the slot and even (and larger) when it finishes, so a
//! reader that sees a torn slot — mid-write, or overwritten during the
//! read — detects the seq change and skips it rather than reporting
//! garbage.

use crate::json::Json;
use crate::metrics::{Histogram, ENDPOINT_NAMES};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Pipeline phases, in journal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Body parse + argument validation.
    Parse = 0,
    /// Session-pool lookup (waiting on a slot, hashing the key).
    Pool = 1,
    /// Artifact-store load attempt.
    StoreLoad = 2,
    /// Model compile (check + transform + flatten).
    Compile = 3,
    /// Evaluation proper: estimate, sweep points, or optimizer search.
    Evaluate = 4,
    /// Response body encode.
    Encode = 5,
}

/// Phase labels, indexed by `Phase as usize`.
pub const PHASE_NAMES: [&str; 6] = [
    "parse",
    "pool",
    "store_load",
    "compile",
    "evaluate",
    "encode",
];

/// How many recent requests the journal keeps.
pub const JOURNAL_CAPACITY: usize = 256;

const TRACE_WORDS: usize = crate::http::MAX_TRACE_LEN / 8;

/// Accumulating span set for one in-flight request.
#[derive(Debug)]
pub struct SpanSet {
    started: Instant,
    last: Instant,
    phase_us: [u64; PHASE_NAMES.len()],
    elab_hits: u64,
    elab_misses: u64,
}

impl SpanSet {
    /// Start the clock for a new request.
    pub fn start() -> Self {
        let now = Instant::now();
        Self {
            started: now,
            last: now,
            phase_us: [0; PHASE_NAMES.len()],
            elab_hits: 0,
            elab_misses: 0,
        }
    }

    /// Attribute the time since the previous mark to `phase`.
    pub fn mark(&mut self, phase: Phase) {
        let now = Instant::now();
        self.phase_us[phase as usize] += now
            .duration_since(self.last)
            .as_micros()
            .min(u64::MAX as u128) as u64;
        self.last = now;
    }

    /// Attribute an externally measured duration to `phase` (used when
    /// a callee reports its own sub-timings, e.g. the pool checkout
    /// splitting store load from compile).
    pub fn add_us(&mut self, phase: Phase, us: u64) {
        self.phase_us[phase as usize] += us;
    }

    /// Reset the inter-mark clock to now, after a stretch accounted
    /// for via [`SpanSet::add_us`].
    pub fn resync(&mut self) {
        self.last = Instant::now();
    }

    /// Record the elaboration-cache hits/misses this request caused.
    pub fn set_elab(&mut self, hits: u64, misses: u64) {
        self.elab_hits = hits;
        self.elab_misses = misses;
    }

    /// Microseconds attributed to `phase` so far.
    pub fn phase_us(&self, phase: Phase) -> u64 {
        self.phase_us[phase as usize]
    }

    /// Total wall time since [`SpanSet::start`], in microseconds.
    pub fn total_us(&self) -> u64 {
        self.started.elapsed().as_micros().min(u64::MAX as u128) as u64
    }
}

/// One all-atomic journal slot (see the module docs for the seqlock
/// protocol).
#[derive(Debug, Default)]
struct Slot {
    /// 0 = never written; odd = write in progress; even > 0 = stable.
    seq: AtomicU64,
    trace: [AtomicU64; TRACE_WORDS],
    trace_len: AtomicU64,
    endpoint: AtomicU64,
    status: AtomicU64,
    total_us: AtomicU64,
    phase_us: [AtomicU64; PHASE_NAMES.len()],
    elab_hits: AtomicU64,
    elab_misses: AtomicU64,
}

/// Decoded copy of one journal slot.
#[derive(Debug, Clone)]
pub struct JournalEntry {
    /// The request's trace ID.
    pub trace: String,
    /// Index into [`ENDPOINT_NAMES`].
    pub endpoint: usize,
    /// Response status code.
    pub status: u16,
    /// Total request wall time, µs.
    pub total_us: u64,
    /// Per-phase µs, indexed like [`PHASE_NAMES`].
    pub phase_us: [u64; PHASE_NAMES.len()],
    /// Elaboration-cache hits this request caused.
    pub elab_hits: u64,
    /// Elaboration-cache misses this request caused.
    pub elab_misses: u64,
}

/// Lock-free ring of recent requests plus aggregated per-phase
/// histograms.
#[derive(Debug)]
pub struct SpanRecorder {
    slots: Box<[Slot]>,
    cursor: AtomicU64,
    recorded: AtomicU64,
    phase_hist: [Histogram; PHASE_NAMES.len()],
}

impl Default for SpanRecorder {
    fn default() -> Self {
        Self::with_capacity(JOURNAL_CAPACITY)
    }
}

impl SpanRecorder {
    /// A recorder keeping the newest `capacity` requests.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity).map(|_| Slot::default()).collect(),
            cursor: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            phase_hist: Default::default(),
        }
    }

    /// Record one completed request. Atomics only: safe from any
    /// worker thread, never blocks, never allocates.
    pub fn record(&self, trace: &str, endpoint: usize, status: u16, spans: &SpanSet) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        for (i, &us) in spans.phase_us.iter().enumerate() {
            if us > 0 {
                self.phase_hist[i].record_us(us);
            }
        }

        let idx = (self.cursor.fetch_add(1, Ordering::Relaxed) as usize) % self.slots.len();
        let slot = &self.slots[idx];
        // Odd sequence: readers (and any concurrent writer colliding on
        // a wrapped ring) will see this slot as in-flight and skip it.
        slot.seq.fetch_add(1, Ordering::Acquire);
        let bytes = trace.as_bytes();
        let take = bytes.len().min(TRACE_WORDS * 8);
        slot.trace_len.store(take as u64, Ordering::Relaxed);
        for (w, word_slot) in slot.trace.iter().enumerate() {
            let mut word = [0u8; 8];
            let start = w * 8;
            if start < take {
                let end = (start + 8).min(take);
                word[..end - start].copy_from_slice(&bytes[start..end]);
            }
            word_slot.store(u64::from_le_bytes(word), Ordering::Relaxed);
        }
        slot.endpoint.store(endpoint as u64, Ordering::Relaxed);
        slot.status.store(u64::from(status), Ordering::Relaxed);
        slot.total_us.store(spans.total_us(), Ordering::Relaxed);
        for (i, &us) in spans.phase_us.iter().enumerate() {
            slot.phase_us[i].store(us, Ordering::Relaxed);
        }
        slot.elab_hits.store(spans.elab_hits, Ordering::Relaxed);
        slot.elab_misses.store(spans.elab_misses, Ordering::Relaxed);
        slot.seq.fetch_add(1, Ordering::Release);
    }

    /// Total requests ever recorded — exact even after the ring wraps.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Stable journal entries, newest first. Slots mid-write or torn
    /// by a concurrent wrap are skipped, not misreported.
    pub fn entries(&self) -> Vec<JournalEntry> {
        let cursor = self.cursor.load(Ordering::Relaxed) as usize;
        let len = self.slots.len();
        let mut out = Vec::with_capacity(cursor.min(len));
        for back in 1..=cursor.min(len) {
            let slot = &self.slots[(cursor - back) % len];
            if let Some(entry) = self.read_slot(slot) {
                out.push(entry);
            }
        }
        out
    }

    fn read_slot(&self, slot: &Slot) -> Option<JournalEntry> {
        let seq = slot.seq.load(Ordering::Acquire);
        if seq == 0 || seq % 2 == 1 {
            return None;
        }
        let mut raw = [0u64; TRACE_WORDS];
        for (w, word_slot) in slot.trace.iter().enumerate() {
            raw[w] = word_slot.load(Ordering::Relaxed);
        }
        let trace_len = (slot.trace_len.load(Ordering::Relaxed) as usize).min(TRACE_WORDS * 8);
        let endpoint =
            (slot.endpoint.load(Ordering::Relaxed) as usize).min(ENDPOINT_NAMES.len() - 1);
        let status = slot.status.load(Ordering::Relaxed) as u16;
        let total_us = slot.total_us.load(Ordering::Relaxed);
        let mut phase_us = [0u64; PHASE_NAMES.len()];
        for (i, p) in slot.phase_us.iter().enumerate() {
            phase_us[i] = p.load(Ordering::Relaxed);
        }
        let elab_hits = slot.elab_hits.load(Ordering::Relaxed);
        let elab_misses = slot.elab_misses.load(Ordering::Relaxed);
        // The fence keeps the relaxed data loads above from being
        // reordered past the confirming sequence load below.
        std::sync::atomic::fence(Ordering::Acquire);
        if slot.seq.load(Ordering::Relaxed) != seq {
            return None; // torn by a concurrent wrap
        }
        let mut bytes = Vec::with_capacity(trace_len);
        for word in raw {
            bytes.extend_from_slice(&word.to_le_bytes());
        }
        bytes.truncate(trace_len);
        let trace = String::from_utf8(bytes).unwrap_or_default();
        Some(JournalEntry {
            trace,
            endpoint,
            status,
            total_us,
            phase_us,
            elab_hits,
            elab_misses,
        })
    }

    /// The `GET /v1/requests` body: newest-first journal plus the
    /// exact lifetime count.
    pub fn journal_json(&self) -> Json {
        let entries: Vec<Json> = self.entries().iter().map(entry_json).collect();
        Json::object([
            ("recorded", Json::from(self.recorded())),
            ("capacity", Json::from(self.slots.len())),
            ("requests", Json::Array(entries)),
        ])
    }

    /// Aggregated per-phase histograms (the `phases` section of
    /// `/v1/metrics`).
    pub fn phases_json(&self) -> Json {
        Json::object(
            PHASE_NAMES
                .iter()
                .enumerate()
                .map(|(i, &name)| (name, self.phase_hist[i].snapshot().to_json())),
        )
    }

    /// Snapshot of one phase histogram, for Prometheus rendering.
    pub fn phase_snapshot(&self, phase: usize) -> crate::metrics::HistogramSnapshot {
        self.phase_hist[phase].snapshot()
    }
}

fn entry_json(entry: &JournalEntry) -> Json {
    let phases = Json::object(
        PHASE_NAMES
            .iter()
            .enumerate()
            .map(|(i, &name)| (name, Json::from(entry.phase_us[i]))),
    );
    Json::object([
        ("trace_id", Json::from(entry.trace.as_str())),
        ("endpoint", Json::from(ENDPOINT_NAMES[entry.endpoint])),
        ("status", Json::from(u64::from(entry.status))),
        ("total_us", Json::from(entry.total_us)),
        ("phases", phases),
        (
            "elab",
            Json::object([
                ("hits", Json::from(entry.elab_hits)),
                ("misses", Json::from(entry.elab_misses)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn spans_with(phase: Phase, us: u64) -> SpanSet {
        let mut s = SpanSet::start();
        s.add_us(phase, us);
        s
    }

    #[test]
    fn journal_keeps_newest_first_with_full_fidelity() {
        let rec = SpanRecorder::with_capacity(8);
        for i in 0..3u64 {
            let mut s = spans_with(Phase::Evaluate, 100 + i);
            s.set_elab(i, 1);
            rec.record(&format!("t-{i}"), 1, 200, &s);
        }
        let entries = rec.entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].trace, "t-2", "newest first");
        assert_eq!(entries[2].trace, "t-0");
        assert_eq!(entries[0].phase_us[Phase::Evaluate as usize], 102);
        assert_eq!(entries[0].elab_hits, 2);
        let json = rec.journal_json();
        assert_eq!(json.get("recorded").unwrap().as_f64(), Some(3.0));
        let first = &json.get("requests").unwrap().as_array().unwrap()[0];
        assert_eq!(first.get("trace_id").unwrap().as_str(), Some("t-2"));
        assert_eq!(first.get("endpoint").unwrap().as_str(), Some("estimate"));
        assert_eq!(
            first
                .get("phases")
                .unwrap()
                .get("evaluate")
                .unwrap()
                .as_f64(),
            Some(102.0)
        );
    }

    #[test]
    fn ring_wrap_keeps_only_capacity_but_counts_everything() {
        let rec = SpanRecorder::with_capacity(4);
        for i in 0..10u64 {
            rec.record(&format!("t-{i}"), 0, 200, &spans_with(Phase::Parse, 1));
        }
        assert_eq!(rec.recorded(), 10, "count survives the wrap");
        let entries = rec.entries();
        assert_eq!(entries.len(), 4);
        assert_eq!(entries[0].trace, "t-9");
        assert_eq!(entries[3].trace, "t-6");
    }

    #[test]
    fn concurrent_recording_never_loses_the_count() {
        // The satellite contract: a tiny ring hammered from many
        // threads wraps constantly, yet the recorded total is exact
        // and every readable entry is internally consistent.
        let rec = Arc::new(SpanRecorder::with_capacity(4));
        let threads = 8;
        let per_thread = 500u64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let rec = Arc::clone(&rec);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    let mut s = spans_with(Phase::Evaluate, i + 1);
                    s.add_us(Phase::Parse, 1);
                    rec.record(&format!("t-{t}-{i}"), 1, 200, &s);
                }
            }));
        }
        // Concurrent readers must never see torn garbage.
        let reader = {
            let rec = Arc::clone(&rec);
            std::thread::spawn(move || {
                let mut seen = 0usize;
                while rec.recorded() < threads as u64 * per_thread {
                    for e in rec.entries() {
                        assert!(e.trace.starts_with("t-"), "torn trace: {:?}", e.trace);
                        assert_eq!(e.status, 200);
                        seen += 1;
                    }
                }
                seen
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        reader.join().unwrap();
        assert_eq!(rec.recorded(), threads as u64 * per_thread);
        // Every surviving slot is stable and well-formed.
        let entries = rec.entries();
        assert_eq!(entries.len(), 4);
        for e in &entries {
            assert!(e.trace.starts_with("t-"));
            assert_eq!(e.phase_us[Phase::Parse as usize], 1);
        }
    }

    #[test]
    fn long_traces_truncate_instead_of_overflowing() {
        let rec = SpanRecorder::with_capacity(2);
        let long = "x".repeat(100);
        rec.record(&long, 0, 200, &SpanSet::start());
        let entries = rec.entries();
        assert_eq!(entries[0].trace.len(), TRACE_WORDS * 8);
        assert!(long.starts_with(&entries[0].trace));
    }

    #[test]
    fn span_set_marks_accumulate_by_phase() {
        let mut s = SpanSet::start();
        s.mark(Phase::Parse);
        s.add_us(Phase::Compile, 250);
        s.resync();
        s.mark(Phase::Evaluate);
        assert_eq!(s.phase_us(Phase::Compile), 250);
        assert!(s.total_us() >= s.phase_us(Phase::Parse));
        let hist = {
            let rec = SpanRecorder::with_capacity(2);
            rec.record("t", 1, 200, &s);
            rec.phases_json()
        };
        assert_eq!(
            hist.get("compile")
                .unwrap()
                .get("observations")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
    }
}
