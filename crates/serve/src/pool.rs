//! The [`SessionPool`]: compiled [`Session`]s shared across every
//! connection, keyed by *content* — `(model digest, MCF digest)`.
//!
//! This is the serve-path payoff of the whole compile-once stack: the
//! first request for a model pays check + transform (and, per SP point,
//! elaboration); every later request for the same model — from any
//! connection, on any worker thread — reuses the compiled [`Session`]
//! **and** its [`ElaborationCache`](prophet_core::ElaborationCache), so
//! a repeat estimate costs one cache lookup plus the evaluation itself.
//!
//! Keying is by FNV-1a digest of the *canonical serializations*
//! (`model_to_xml` of the parsed model, `McfConfig::to_xml` with sorted
//! rule ids), not of the raw request bytes, so two clients posting the
//! same model with different whitespace or attribute formatting share
//! one session. Compilation is raced through a per-key `OnceLock`: when
//! two requests for a new model arrive together, one compiles and the
//! other blocks until the artifact is ready — never two compiles.
//!
//! The pool is bounded ([`SessionPool::with_capacity`]): beyond
//! `capacity` distinct keys, new models are compiled per-request and
//! *not* retained (counted as `bypasses`), mirroring the elaboration
//! cache's no-eviction policy — steady-state behavior stays predictable
//! under key churn instead of thrashing an eviction list.
//!
//! With a persistent [`ArtifactStore`] attached
//! ([`SessionPool::with_store`]), the pool consults the disk before
//! compiling — a store hit rebuilds the session from its serialized
//! artifacts, skipping check + transform — and writes freshly compiled
//! sessions back, so the *next* process boots warm.
//! [`SessionPool::warm_start`] goes further and pre-loads every stored
//! artifact at startup: the first request after a restart is a pool
//! reuse, with zero compiles anywhere (`prophet serve --store DIR`).
//! The key type is shared with the store by construction: [`PoolKey`]
//! *is* [`prophet_core::ArtifactKey`], so what addresses a pooled
//! session in memory addresses its artifact on disk.

use prophet_check::McfConfig;
use prophet_core::{ArtifactStore, ElabStats, Session, StoreStats};
use prophet_uml::Model;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default bound on retained sessions.
pub const DEFAULT_CAPACITY: usize = 64;

/// Content key of one pooled session — the same `(model, MCF)`
/// canonical-XML content digest that addresses artifacts in the
/// persistent [`ArtifactStore`] (it moved to `prophet_core::store` when
/// the store was introduced; the pool keeps the name).
pub type PoolKey = prophet_core::ArtifactKey;

/// Compilation outcome stored per key: the shared session, or the
/// rendered error chain (also cached — a model that fails to compile
/// fails the same way on every retry, so recompiling it per request
/// would be a free denial-of-service lever).
type Slot = Arc<OnceLock<Result<Arc<Session>, String>>>;

/// Where a [`SessionPool::checkout_timed`] call spent its time, for
/// the per-request span recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckoutTiming {
    /// Microseconds spent attempting an artifact-store load (hit or
    /// miss), zero without a store.
    pub store_us: u64,
    /// Microseconds spent compiling, zero on a reuse or disk hit.
    pub compile_us: u64,
}

fn elapsed_us(since: std::time::Instant) -> u64 {
    since.elapsed().as_micros().min(u64::MAX as u128) as u64
}

/// Counter snapshot of a [`SessionPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Distinct keys currently retained.
    pub size: usize,
    /// Sessions compiled and retained by the pool.
    pub compiles: u64,
    /// Requests served by an already-compiled session.
    pub reuses: u64,
    /// Requests compiled uncached because the pool was full.
    pub bypasses: u64,
}

/// Which slice of a shared artifact store this shard owns: the fleet's
/// consistent-hash ring plus this shard's position on it
/// (`prophet serve --store DIR --partition FLEET`).
///
/// Partitioning namespaces the shared store by ring ownership *at
/// warm-start*: a partitioned pool pre-loads only the keys the fleet's
/// ring assigns to this shard, so boot cost stays ~K/N as the fleet
/// grows instead of every shard loading every sibling's write-backs.
/// The request path is deliberately unfiltered — a shard may serve (and
/// write back) keys it doesn't own during failover or a rebalance.
#[derive(Debug)]
pub struct StorePartition {
    ring: prophet_core::ring::Ring,
    own: usize,
}

impl StorePartition {
    /// Partition by the fleet's shard labels (addresses — the same
    /// strings the router's `--shards` list uses) and this shard's own
    /// label. `None` when `own` is not in `fleet` — a partition that
    /// owns nothing is a misconfiguration, not an empty warm start.
    pub fn new<S: AsRef<str>>(fleet: &[S], own: &str) -> Option<Self> {
        let own_index = fleet.iter().position(|l| l.as_ref() == own)?;
        Some(Self {
            ring: prophet_core::ring::Ring::new(fleet),
            own: own_index,
        })
    }

    /// Whether this shard owns `key` under the fleet's ring — the
    /// identical placement the router computes for the same labels.
    pub fn owns(&self, key: PoolKey) -> bool {
        self.ring.route(prophet_core::ring::route_key(key)) == self.own
    }
}

/// A bounded, concurrency-safe pool of compiled [`Session`]s,
/// optionally backed by a persistent [`ArtifactStore`].
#[derive(Debug)]
pub struct SessionPool {
    slots: Mutex<HashMap<PoolKey, Slot>>,
    capacity: usize,
    store: Option<Arc<ArtifactStore>>,
    partition: Option<StorePartition>,
    compiles: AtomicU64,
    reuses: AtomicU64,
    bypasses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for SessionPool {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl SessionPool {
    /// A pool retaining at most `capacity` sessions.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            slots: Mutex::new(HashMap::new()),
            capacity,
            store: None,
            partition: None,
            compiles: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Restrict [`warm_start`](Self::warm_start) to the store keys this
    /// shard owns under `partition` (see [`StorePartition`]). Builder
    /// style, applied before the pool starts serving.
    pub fn with_partition(mut self, partition: StorePartition) -> Self {
        self.partition = Some(partition);
        self
    }

    /// [`SessionPool::with_capacity`], backed by a persistent artifact
    /// store: in-memory misses consult the disk before compiling, and
    /// fresh compiles write their artifact back. Call
    /// [`SessionPool::warm_start`] to additionally pre-load everything
    /// the store already holds.
    pub fn with_store(capacity: usize, store: Arc<ArtifactStore>) -> Self {
        Self {
            store: Some(store),
            ..Self::with_capacity(capacity)
        }
    }

    /// Pre-load every artifact in the attached store into the pool (up
    /// to the pool's capacity), so the first request after a process
    /// restart is a pool *reuse* — zero compiles. Returns the number of
    /// sessions loaded; corrupt or stale entries are skipped (and
    /// evicted by the store). Without a store this is a no-op.
    ///
    /// Intended for boot time (`prophet serve --store`), before the
    /// listener accepts traffic; it is safe but unbounded in I/O, so
    /// don't call it on a request path.
    pub fn warm_start(&self) -> usize {
        let Some(store) = &self.store else { return 0 };
        let mut loaded = 0;
        for key in store.keys() {
            if self.partition.as_ref().is_some_and(|p| !p.owns(key)) {
                continue;
            }
            {
                let slots = self.slots.lock().expect("pool lock");
                if slots.len() >= self.capacity {
                    break;
                }
                if slots.contains_key(&key) {
                    continue;
                }
            }
            // Load outside the lock: warm-start runs before traffic,
            // but a request racing the tail of a warm start must block
            // on the map mutex only for the insert, not the file read.
            if let Some(session) = store.load_session(key) {
                let slot: Slot = Arc::new(OnceLock::new());
                slot.set(Ok(Arc::new(session))).expect("fresh slot");
                self.slots
                    .lock()
                    .expect("pool lock")
                    .entry(key)
                    .or_insert(slot);
                loaded += 1;
            }
        }
        loaded
    }

    /// The session for `(model, mcf)`: compiled on first request,
    /// shared afterwards.
    ///
    /// # Errors
    /// The rendered compile-error chain when the model fails check or
    /// transform (cached like a success; retrying cannot help).
    pub fn session(&self, model: &Model, mcf: &McfConfig) -> Result<Arc<Session>, String> {
        self.checkout(model, mcf).map(|(session, _)| session)
    }

    /// [`SessionPool::session`], also reporting whether the request was
    /// served by an already-pooled session (`true`) or had to compile
    /// (`false`) — the flag `/v1/estimate` echoes back to clients.
    pub fn checkout(&self, model: &Model, mcf: &McfConfig) -> Result<(Arc<Session>, bool), String> {
        self.checkout_timed(model, mcf)
            .map(|(session, reused, _)| (session, reused))
    }

    /// [`SessionPool::checkout`], additionally reporting how long this
    /// request spent loading from the store and compiling — the span
    /// recorder's store-load and compile phases. A request that merely
    /// waited on another thread's in-flight compile reports zeros for
    /// both (its wait is pool time, measured by the caller).
    pub fn checkout_timed(
        &self,
        model: &Model,
        mcf: &McfConfig,
    ) -> Result<(Arc<Session>, bool, CheckoutTiming), String> {
        let key = PoolKey::of(model, mcf);
        let (slot, reused) = {
            let mut slots = self.slots.lock().expect("pool lock");
            match slots.get(&key) {
                Some(slot) => {
                    self.reuses.fetch_add(1, Ordering::Relaxed);
                    (Arc::clone(slot), true)
                }
                None if slots.len() >= self.capacity => {
                    // Full: compile (or load) for this request only.
                    // The store still accelerates and persists it —
                    // disk is the bigger cache.
                    self.bypasses.fetch_add(1, Ordering::Relaxed);
                    drop(slots);
                    let mut timing = CheckoutTiming::default();
                    if let Some(store) = &self.store {
                        let t = std::time::Instant::now();
                        let loaded = store.load_session(key);
                        timing.store_us = elapsed_us(t);
                        if let Some(session) = loaded {
                            return Ok((Arc::new(session), false, timing));
                        }
                    }
                    let t = std::time::Instant::now();
                    let compiled = Session::compile(model.clone(), mcf.clone())
                        .map_err(|e| prophet_core::render_chain(&e))?;
                    timing.compile_us = elapsed_us(t);
                    if let Some(store) = &self.store {
                        let _ = store.save_session(&compiled);
                    }
                    return Ok((Arc::new(compiled), false, timing));
                }
                None => {
                    let slot: Slot = Arc::new(OnceLock::new());
                    slots.insert(key, Arc::clone(&slot));
                    (Arc::clone(&slot), false)
                }
            }
        };
        // Compile outside the map lock; concurrent requests for the same
        // new key block here on the OnceLock, not on the whole pool.
        // With a store attached, the disk is consulted first: a disk
        // hit rebuilds the session without check or transform and does
        // NOT count as a compile; a miss compiles and writes back.
        let mut timing = CheckoutTiming::default();
        let result = slot.get_or_init(|| {
            if let Some(store) = &self.store {
                let t = std::time::Instant::now();
                let loaded = store.load_session(key);
                timing.store_us = elapsed_us(t);
                if let Some(session) = loaded {
                    return Ok(Arc::new(session));
                }
            }
            self.compiles.fetch_add(1, Ordering::Relaxed);
            let t = std::time::Instant::now();
            let compiled = Session::compile(model.clone(), mcf.clone())
                .map(Arc::new)
                .map_err(|e| prophet_core::render_chain(&e));
            timing.compile_us = elapsed_us(t);
            let compiled = compiled?;
            if let Some(store) = &self.store {
                // Persistence is best-effort on the request path; the
                // store counts write errors for /v1/metrics.
                let _ = store.save_session(&compiled);
            }
            Ok(compiled)
        });
        result.clone().map(|session| (session, reused, timing))
    }

    /// Drop the pooled session for `key`, if present. The router's
    /// rebalance handoff calls this (via `POST /v1/evict`) on a key's
    /// *old* owner once the new owner is warm; in-flight requests keep
    /// their `Arc<Session>` until they finish, and the on-disk artifact
    /// (if any) is untouched — eviction frees pool capacity, not disk.
    pub fn evict(&self, key: PoolKey) -> bool {
        let removed = self.slots.lock().expect("pool lock").remove(&key).is_some();
        if removed {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// How many pooled sessions have been dropped via
    /// [`evict`](Self::evict) — surfaced as
    /// `session_pool.evictions` on `/v1/metrics`.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Counter snapshot of the attached artifact store, if any — the
    /// `/v1/metrics` `store` section.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(|s| s.stats())
    }

    /// The attached artifact store, if any — the metrics checkpoint
    /// thread persists lifetime counters through it.
    pub fn store(&self) -> Option<&Arc<ArtifactStore>> {
        self.store.as_ref()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            size: self.slots.lock().expect("pool lock").len(),
            compiles: self.compiles.load(Ordering::Relaxed),
            reuses: self.reuses.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
        }
    }

    /// Aggregate elaboration-cache counters over every pooled session —
    /// the `/v1/metrics` view of the flatten-once contract at work.
    pub fn elab_stats(&self) -> ElabStats {
        let slots: Vec<Slot> = self
            .slots
            .lock()
            .expect("pool lock")
            .values()
            .cloned()
            .collect();
        let mut total = ElabStats::default();
        for slot in slots {
            if let Some(Ok(session)) = slot.get() {
                let s = session.elab_stats();
                total.hits += s.hits;
                total.misses += s.misses;
                total.bypasses += s.bypasses;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_core::Scenario;
    use prophet_machine::SystemParams;
    use prophet_uml::ModelBuilder;

    fn model(name: &str, cost: &str) -> Model {
        let mut b = ModelBuilder::new(name);
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let a = b.action(main, "Work", cost);
        let f = b.final_node(main, "end");
        b.flow(main, i, a);
        b.flow(main, a, f);
        b.build()
    }

    #[test]
    fn canonicalization_is_a_fixed_point() {
        for (name, _) in crate::api::demo_models() {
            let m = crate::api::demo_model(name).unwrap();
            let canonical = prophet_core::store::canonical_model_xml(&m);
            let reparsed = prophet_uml::xmi::model_from_xml(&canonical).unwrap();
            assert_eq!(
                canonical,
                prophet_uml::xmi::model_to_xml(&reparsed),
                "{name}: canonical form must be parse-stable"
            );
            // Builder-built and parsed spellings share one pool key.
            assert_eq!(
                PoolKey::of(&m, &McfConfig::default()),
                PoolKey::of(&reparsed, &McfConfig::default()),
                "{name}"
            );
        }
    }

    #[test]
    fn same_content_compiles_once() {
        let pool = SessionPool::default();
        let mcf = McfConfig::default();
        let s1 = pool.session(&model("m", "2.0"), &mcf).unwrap();
        let s2 = pool.session(&model("m", "2.0"), &mcf).unwrap();
        assert!(Arc::ptr_eq(&s1, &s2), "second request must reuse");
        assert_eq!(
            pool.stats(),
            PoolStats {
                size: 1,
                compiles: 1,
                reuses: 1,
                bypasses: 0
            }
        );
    }

    #[test]
    fn different_content_gets_its_own_session() {
        let pool = SessionPool::default();
        let mcf = McfConfig::default();
        pool.session(&model("m", "2.0"), &mcf).unwrap();
        pool.session(&model("m", "3.0"), &mcf).unwrap();
        assert_eq!(pool.stats().size, 2);
        assert_eq!(pool.stats().compiles, 2);
    }

    #[test]
    fn concurrent_first_requests_compile_exactly_once() {
        let pool = Arc::new(SessionPool::default());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    pool.session(&model("racy", "1.0"), &McfConfig::default())
                        .unwrap();
                });
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.compiles, 1, "{stats:?}");
        assert_eq!(stats.reuses + stats.compiles, 8, "{stats:?}");
    }

    #[test]
    fn full_pool_bypasses_without_evicting() {
        let pool = SessionPool::with_capacity(1);
        let mcf = McfConfig::default();
        pool.session(&model("keep", "1.0"), &mcf).unwrap();
        pool.session(&model("extra", "2.0"), &mcf).unwrap();
        let stats = pool.stats();
        assert_eq!((stats.size, stats.bypasses), (1, 1), "{stats:?}");
        // The retained session still reuses.
        pool.session(&model("keep", "1.0"), &mcf).unwrap();
        assert_eq!(pool.stats().reuses, 1);
    }

    #[test]
    fn compile_errors_are_cached() {
        let pool = SessionPool::default();
        let mcf = McfConfig::default();
        let bad = model("bad", "1 +");
        let e1 = pool.session(&bad, &mcf).unwrap_err();
        let e2 = pool.session(&bad, &mcf).unwrap_err();
        assert_eq!(e1, e2);
        assert!(e1.contains("model check failed"), "{e1}");
        let stats = pool.stats();
        assert_eq!((stats.compiles, stats.reuses), (1, 1), "{stats:?}");
    }

    fn temp_store(tag: &str) -> Arc<ArtifactStore> {
        let dir =
            std::env::temp_dir().join(format!("prophet-pool-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Arc::new(ArtifactStore::open(dir).expect("temp store opens"))
    }

    #[test]
    fn store_miss_compiles_and_writes_back() {
        let store = temp_store("writeback");
        let pool = SessionPool::with_store(DEFAULT_CAPACITY, Arc::clone(&store));
        let mcf = McfConfig::default();
        pool.session(&model("wb", "1.0"), &mcf).unwrap();
        let stats = store.stats();
        assert_eq!((stats.disk_misses, stats.writes), (1, 1), "{stats:?}");
        assert_eq!(pool.stats().compiles, 1);
        assert_eq!(pool.store_stats(), Some(stats));
    }

    #[test]
    fn second_pool_hits_the_disk_instead_of_compiling() {
        let store = temp_store("restart");
        let mcf = McfConfig::default();
        let m = model("restart", "2.0 / P");
        {
            let pool = SessionPool::with_store(DEFAULT_CAPACITY, Arc::clone(&store));
            pool.session(&m, &mcf).unwrap();
        }
        // "Restart": a fresh pool over the same directory.
        let store2 = Arc::new(ArtifactStore::open(store.dir()).unwrap());
        let pool = SessionPool::with_store(DEFAULT_CAPACITY, Arc::clone(&store2));
        pool.session(&m, &mcf).unwrap();
        assert_eq!(pool.stats().compiles, 0, "disk hit must not compile");
        assert_eq!(store2.stats().disk_hits, 1);
    }

    #[test]
    fn warm_start_preloads_every_stored_session() {
        let store = temp_store("warm");
        let mcf = McfConfig::default();
        let m1 = model("w1", "1.0");
        let m2 = model("w2", "2.0");
        {
            let pool = SessionPool::with_store(DEFAULT_CAPACITY, Arc::clone(&store));
            pool.session(&m1, &mcf).unwrap();
            pool.session(&m2, &mcf).unwrap();
        }
        let store2 = Arc::new(ArtifactStore::open(store.dir()).unwrap());
        let pool = SessionPool::with_store(DEFAULT_CAPACITY, Arc::clone(&store2));
        assert_eq!(pool.warm_start(), 2);
        let stats = pool.stats();
        assert_eq!((stats.size, stats.compiles), (2, 0), "{stats:?}");
        // The first request is a plain pool reuse.
        pool.session(&m1, &mcf).unwrap();
        let stats = pool.stats();
        assert_eq!((stats.compiles, stats.reuses), (0, 1), "{stats:?}");
    }

    #[test]
    fn warm_start_respects_capacity_and_skips_corrupt_entries() {
        let store = temp_store("warmcap");
        let mcf = McfConfig::default();
        {
            let pool = SessionPool::with_store(DEFAULT_CAPACITY, Arc::clone(&store));
            for (name, cost) in [("c1", "1.0"), ("c2", "2.0"), ("c3", "3.0")] {
                pool.session(&model(name, cost), &mcf).unwrap();
            }
        }
        // Corrupt one entry on disk.
        let victim = store.keys()[0];
        std::fs::write(store.entry_path(victim), b"garbage").unwrap();

        let store2 = Arc::new(ArtifactStore::open(store.dir()).unwrap());
        let pool = SessionPool::with_store(2, Arc::clone(&store2));
        let loaded = pool.warm_start();
        assert!(loaded <= 2, "capacity bound: {loaded}");
        assert!(pool.stats().size <= 2);
        // The corrupt entry was either skipped (and evicted) or simply
        // never reached under the capacity bound; never a panic.
        assert_eq!(pool.stats().compiles, 0);
    }

    #[test]
    fn evict_drops_exactly_the_named_key() {
        let pool = SessionPool::default();
        let mcf = McfConfig::default();
        let keep = model("keep", "1.0");
        let drop_me = model("drop", "2.0");
        let kept = pool.session(&keep, &mcf).unwrap();
        pool.session(&drop_me, &mcf).unwrap();
        assert_eq!(pool.stats().size, 2);

        assert!(pool.evict(PoolKey::of(&drop_me, &mcf)));
        assert!(!pool.evict(PoolKey::of(&drop_me, &mcf)), "already gone");
        assert_eq!(pool.stats().size, 1);
        assert_eq!(pool.evictions(), 1);
        // The survivor still reuses; the evicted key recompiles.
        assert!(Arc::ptr_eq(&kept, &pool.session(&keep, &mcf).unwrap()));
        pool.session(&drop_me, &mcf).unwrap();
        assert_eq!(pool.stats().compiles, 3);
    }

    #[test]
    fn partitioned_warm_start_loads_only_owned_keys() {
        let store = temp_store("partition");
        let mcf = McfConfig::default();
        // Seed the shared store with enough distinct models that both
        // partitions own something.
        let models: Vec<Model> = (0..8)
            .map(|i| model(&format!("p{i}"), &format!("{}.0", i + 1)))
            .collect();
        {
            let pool = SessionPool::with_store(DEFAULT_CAPACITY, Arc::clone(&store));
            for m in &models {
                pool.session(m, &mcf).unwrap();
            }
        }
        let fleet = ["10.0.0.1:7071", "10.0.0.2:7071"];
        let all: Vec<PoolKey> = store.keys();
        let owned_by = |own: &str| {
            let p = StorePartition::new(&fleet, own).unwrap();
            all.iter().filter(|&&k| p.owns(k)).count()
        };
        assert_eq!(
            owned_by(fleet[0]) + owned_by(fleet[1]),
            all.len(),
            "every key has exactly one owner"
        );

        for own in fleet {
            let store2 = Arc::new(ArtifactStore::open(store.dir()).unwrap());
            let pool = SessionPool::with_store(DEFAULT_CAPACITY, store2)
                .with_partition(StorePartition::new(&fleet, own).unwrap());
            assert_eq!(
                pool.warm_start(),
                owned_by(own),
                "{own} must warm exactly its ring slice"
            );
        }
        // A label outside the fleet is a misconfiguration, not a shard
        // that owns nothing.
        assert!(StorePartition::new(&fleet, "10.9.9.9:1").is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn checkout_timing_splits_store_load_from_compile() {
        let store = temp_store("timing");
        let pool = SessionPool::with_store(DEFAULT_CAPACITY, Arc::clone(&store));
        let mcf = McfConfig::default();
        let m = model("timed", "1.0");
        // First checkout: a store miss, then a compile.
        let (_, reused, t) = pool.checkout_timed(&m, &mcf).unwrap();
        assert!(!reused);
        assert!(t.compile_us > 0, "{t:?}");
        // Reuse: no store work, no compile work.
        let (_, reused, t) = pool.checkout_timed(&m, &mcf).unwrap();
        assert!(reused);
        assert_eq!(t, CheckoutTiming::default());
        // A fresh pool over the same store: the disk hit is store time,
        // not compile time.
        let store2 = Arc::new(ArtifactStore::open(store.dir()).unwrap());
        let pool2 = SessionPool::with_store(DEFAULT_CAPACITY, store2);
        let (_, _, t) = pool2.checkout_timed(&m, &mcf).unwrap();
        assert!(t.store_us > 0, "{t:?}");
        assert_eq!(t.compile_us, 0, "{t:?}");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn pooled_sessions_share_their_elab_cache() {
        let pool = SessionPool::default();
        let mcf = McfConfig::default();
        let m = model("elab", "4.0 / P");
        let scenario = Scenario::new(SystemParams::flat_mpi(2, 1)).without_trace();
        pool.session(&m, &mcf).unwrap().evaluate(&scenario).unwrap();
        pool.session(&m, &mcf).unwrap().evaluate(&scenario).unwrap();
        let elab = pool.elab_stats();
        assert_eq!((elab.misses, elab.hits), (1, 1), "{elab:?}");
    }
}
