//! The [`SessionPool`]: compiled [`Session`]s shared across every
//! connection, keyed by *content* — `(model digest, MCF digest)`.
//!
//! This is the serve-path payoff of the whole compile-once stack: the
//! first request for a model pays check + transform (and, per SP point,
//! elaboration); every later request for the same model — from any
//! connection, on any worker thread — reuses the compiled [`Session`]
//! **and** its [`ElaborationCache`](prophet_core::ElaborationCache), so
//! a repeat estimate costs one cache lookup plus the evaluation itself.
//!
//! Keying is by FNV-1a digest of the *canonical serializations*
//! (`model_to_xml` of the parsed model, `McfConfig::to_xml` with sorted
//! rule ids), not of the raw request bytes, so two clients posting the
//! same model with different whitespace or attribute formatting share
//! one session. Compilation is raced through a per-key `OnceLock`: when
//! two requests for a new model arrive together, one compiles and the
//! other blocks until the artifact is ready — never two compiles.
//!
//! The pool is bounded ([`SessionPool::with_capacity`]): beyond
//! `capacity` distinct keys, new models are compiled per-request and
//! *not* retained (counted as `bypasses`), mirroring the elaboration
//! cache's no-eviction policy — steady-state behavior stays predictable
//! under key churn instead of thrashing an eviction list.

use prophet_check::McfConfig;
use prophet_core::{ElabStats, Session};
use prophet_uml::Model;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default bound on retained sessions.
pub const DEFAULT_CAPACITY: usize = 64;

/// Content key of one pooled session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolKey {
    /// FNV-1a digest of the canonical model XML.
    pub model: u64,
    /// FNV-1a digest of the canonical MCF XML.
    pub mcf: u64,
}

impl PoolKey {
    /// Key for a `(model, mcf)` pair, by canonical serialization.
    pub fn of(model: &Model, mcf: &McfConfig) -> Self {
        Self {
            model: fnv1a(canonical_model_xml(model).as_bytes()),
            mcf: fnv1a(mcf.to_xml().as_bytes()),
        }
    }
}

/// The canonical serialization of a model: one serialize→parse→serialize
/// roundtrip. The XMI parser re-assigns element ids in document order,
/// so a builder-constructed model and its parsed round trip serialize
/// with different (isomorphic) ids; after one parse the ids *are*
/// document-ordered and the serialization is a fixed point — pinned by
/// the `canonicalization_is_a_fixed_point` test for every demo model.
fn canonical_model_xml(model: &Model) -> String {
    let first = prophet_uml::xmi::model_to_xml(model);
    match prophet_uml::xmi::model_from_xml(&first) {
        Ok(reparsed) => prophet_uml::xmi::model_to_xml(&reparsed),
        // Unserializable models can't happen for checked input, but a
        // digest must never fail: fall back to the raw serialization.
        Err(_) => first,
    }
}

/// 64-bit FNV-1a (the same digest family `op_digest` uses for golden
/// op-list snapshots).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Compilation outcome stored per key: the shared session, or the
/// rendered error chain (also cached — a model that fails to compile
/// fails the same way on every retry, so recompiling it per request
/// would be a free denial-of-service lever).
type Slot = Arc<OnceLock<Result<Arc<Session>, String>>>;

/// Counter snapshot of a [`SessionPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Distinct keys currently retained.
    pub size: usize,
    /// Sessions compiled and retained by the pool.
    pub compiles: u64,
    /// Requests served by an already-compiled session.
    pub reuses: u64,
    /// Requests compiled uncached because the pool was full.
    pub bypasses: u64,
}

/// A bounded, concurrency-safe pool of compiled [`Session`]s.
#[derive(Debug)]
pub struct SessionPool {
    slots: Mutex<HashMap<PoolKey, Slot>>,
    capacity: usize,
    compiles: AtomicU64,
    reuses: AtomicU64,
    bypasses: AtomicU64,
}

impl Default for SessionPool {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl SessionPool {
    /// A pool retaining at most `capacity` sessions.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            slots: Mutex::new(HashMap::new()),
            capacity,
            compiles: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
        }
    }

    /// The session for `(model, mcf)`: compiled on first request,
    /// shared afterwards.
    ///
    /// # Errors
    /// The rendered compile-error chain when the model fails check or
    /// transform (cached like a success; retrying cannot help).
    pub fn session(&self, model: &Model, mcf: &McfConfig) -> Result<Arc<Session>, String> {
        self.checkout(model, mcf).map(|(session, _)| session)
    }

    /// [`SessionPool::session`], also reporting whether the request was
    /// served by an already-pooled session (`true`) or had to compile
    /// (`false`) — the flag `/v1/estimate` echoes back to clients.
    pub fn checkout(&self, model: &Model, mcf: &McfConfig) -> Result<(Arc<Session>, bool), String> {
        let key = PoolKey::of(model, mcf);
        let (slot, reused) = {
            let mut slots = self.slots.lock().expect("pool lock");
            match slots.get(&key) {
                Some(slot) => {
                    self.reuses.fetch_add(1, Ordering::Relaxed);
                    (Arc::clone(slot), true)
                }
                None if slots.len() >= self.capacity => {
                    // Full: compile for this request only.
                    self.bypasses.fetch_add(1, Ordering::Relaxed);
                    drop(slots);
                    return Session::compile(model.clone(), mcf.clone())
                        .map(|s| (Arc::new(s), false))
                        .map_err(|e| prophet_core::render_chain(&e));
                }
                None => {
                    let slot: Slot = Arc::new(OnceLock::new());
                    slots.insert(key, Arc::clone(&slot));
                    (Arc::clone(&slot), false)
                }
            }
        };
        // Compile outside the map lock; concurrent requests for the same
        // new key block here on the OnceLock, not on the whole pool.
        let result = slot.get_or_init(|| {
            self.compiles.fetch_add(1, Ordering::Relaxed);
            Session::compile(model.clone(), mcf.clone())
                .map(Arc::new)
                .map_err(|e| prophet_core::render_chain(&e))
        });
        result.clone().map(|session| (session, reused))
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            size: self.slots.lock().expect("pool lock").len(),
            compiles: self.compiles.load(Ordering::Relaxed),
            reuses: self.reuses.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
        }
    }

    /// Aggregate elaboration-cache counters over every pooled session —
    /// the `/v1/metrics` view of the flatten-once contract at work.
    pub fn elab_stats(&self) -> ElabStats {
        let slots: Vec<Slot> = self
            .slots
            .lock()
            .expect("pool lock")
            .values()
            .cloned()
            .collect();
        let mut total = ElabStats::default();
        for slot in slots {
            if let Some(Ok(session)) = slot.get() {
                let s = session.elab_stats();
                total.hits += s.hits;
                total.misses += s.misses;
                total.bypasses += s.bypasses;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_core::Scenario;
    use prophet_machine::SystemParams;
    use prophet_uml::ModelBuilder;

    fn model(name: &str, cost: &str) -> Model {
        let mut b = ModelBuilder::new(name);
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let a = b.action(main, "Work", cost);
        let f = b.final_node(main, "end");
        b.flow(main, i, a);
        b.flow(main, a, f);
        b.build()
    }

    #[test]
    fn canonicalization_is_a_fixed_point() {
        for (name, _) in crate::api::demo_models() {
            let m = crate::api::demo_model(name).unwrap();
            let canonical = canonical_model_xml(&m);
            let reparsed = prophet_uml::xmi::model_from_xml(&canonical).unwrap();
            assert_eq!(
                canonical,
                prophet_uml::xmi::model_to_xml(&reparsed),
                "{name}: canonical form must be parse-stable"
            );
            // Builder-built and parsed spellings share one pool key.
            assert_eq!(
                PoolKey::of(&m, &McfConfig::default()),
                PoolKey::of(&reparsed, &McfConfig::default()),
                "{name}"
            );
        }
    }

    #[test]
    fn same_content_compiles_once() {
        let pool = SessionPool::default();
        let mcf = McfConfig::default();
        let s1 = pool.session(&model("m", "2.0"), &mcf).unwrap();
        let s2 = pool.session(&model("m", "2.0"), &mcf).unwrap();
        assert!(Arc::ptr_eq(&s1, &s2), "second request must reuse");
        assert_eq!(
            pool.stats(),
            PoolStats {
                size: 1,
                compiles: 1,
                reuses: 1,
                bypasses: 0
            }
        );
    }

    #[test]
    fn different_content_gets_its_own_session() {
        let pool = SessionPool::default();
        let mcf = McfConfig::default();
        pool.session(&model("m", "2.0"), &mcf).unwrap();
        pool.session(&model("m", "3.0"), &mcf).unwrap();
        assert_eq!(pool.stats().size, 2);
        assert_eq!(pool.stats().compiles, 2);
    }

    #[test]
    fn concurrent_first_requests_compile_exactly_once() {
        let pool = Arc::new(SessionPool::default());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    pool.session(&model("racy", "1.0"), &McfConfig::default())
                        .unwrap();
                });
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.compiles, 1, "{stats:?}");
        assert_eq!(stats.reuses + stats.compiles, 8, "{stats:?}");
    }

    #[test]
    fn full_pool_bypasses_without_evicting() {
        let pool = SessionPool::with_capacity(1);
        let mcf = McfConfig::default();
        pool.session(&model("keep", "1.0"), &mcf).unwrap();
        pool.session(&model("extra", "2.0"), &mcf).unwrap();
        let stats = pool.stats();
        assert_eq!((stats.size, stats.bypasses), (1, 1), "{stats:?}");
        // The retained session still reuses.
        pool.session(&model("keep", "1.0"), &mcf).unwrap();
        assert_eq!(pool.stats().reuses, 1);
    }

    #[test]
    fn compile_errors_are_cached() {
        let pool = SessionPool::default();
        let mcf = McfConfig::default();
        let bad = model("bad", "1 +");
        let e1 = pool.session(&bad, &mcf).unwrap_err();
        let e2 = pool.session(&bad, &mcf).unwrap_err();
        assert_eq!(e1, e2);
        assert!(e1.contains("model check failed"), "{e1}");
        let stats = pool.stats();
        assert_eq!((stats.compiles, stats.reuses), (1, 1), "{stats:?}");
    }

    #[test]
    fn pooled_sessions_share_their_elab_cache() {
        let pool = SessionPool::default();
        let mcf = McfConfig::default();
        let m = model("elab", "4.0 / P");
        let scenario = Scenario::new(SystemParams::flat_mpi(2, 1)).without_trace();
        pool.session(&m, &mcf).unwrap().evaluate(&scenario).unwrap();
        pool.session(&m, &mcf).unwrap().evaluate(&scenario).unwrap();
        let elab = pool.elab_stats();
        assert_eq!((elab.misses, elab.hits), (1, 1), "{elab:?}");
    }
}
