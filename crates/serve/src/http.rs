//! A small HTTP/1.1 subset over `std::net`: exactly what the prediction
//! service needs, nothing more.
//!
//! Requests are parsed from the socket with hard limits (request-line
//! size, header count, body size) so a misbehaving client cannot make a
//! worker allocate unboundedly. Each connection carries one request and
//! the response always closes the connection (`Connection: close`) —
//! the service's unit of work is one prediction, and the expensive
//! state (compiled sessions, elaborations) is shared *behind* the
//! connection, so keep-alive would buy nothing measurable on loopback
//! and complicates draining on shutdown.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;

/// Longest accepted request line (method + path + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body (models are small XML documents).
pub const MAX_BODY: usize = 8 * 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path without query string.
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: String,
}

impl Request {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A response ready to serialize.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// The body text.
    pub body: String,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// Serialize and write this response to `stream`.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// A request the parser refused, with the status it should be answered
/// with (`400` malformed, `413` over a limit).
#[derive(Debug)]
pub struct ParseError {
    /// Status code to answer with.
    pub status: u16,
    /// Human-readable reason.
    pub message: String,
}

impl ParseError {
    fn bad(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }

    fn too_large(message: impl Into<String>) -> Self {
        Self {
            status: 413,
            message: message.into(),
        }
    }
}

/// Read and parse one request from `stream`.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ParseError> {
    let mut reader = BufReader::new(stream);
    let line = read_line(&mut reader, MAX_REQUEST_LINE)?;
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(ParseError::bad(format!("malformed request line `{line}`"))),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::bad(format!("unsupported version `{version}`")));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    loop {
        let line = read_line(&mut reader, MAX_REQUEST_LINE)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::too_large("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::bad(format!("malformed header `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let length: usize = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => v
            .parse()
            .map_err(|_| ParseError::bad(format!("bad content-length `{v}`")))?,
        None => 0,
    };
    if length > MAX_BODY {
        return Err(ParseError::too_large(format!(
            "body of {length} bytes exceeds the {MAX_BODY}-byte limit"
        )));
    }
    let mut body = vec![0u8; length];
    reader
        .read_exact(&mut body)
        .map_err(|e| ParseError::bad(format!("short body: {e}")))?;
    let body = String::from_utf8(body).map_err(|_| ParseError::bad("body is not valid UTF-8"))?;

    Ok(Request {
        method: method.to_ascii_uppercase(),
        path,
        headers,
        body,
    })
}

/// Read one CRLF (or LF) terminated line, bounded by `limit` bytes.
fn read_line(reader: &mut BufReader<&mut TcpStream>, limit: usize) -> Result<String, ParseError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) => return Err(ParseError::bad(format!("connection ended mid-line: {e}"))),
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line).map_err(|_| ParseError::bad("non-UTF-8 in header"));
        }
        line.push(byte[0]);
        if line.len() > limit {
            return Err(ParseError::too_large("request line or header too long"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &str) -> Result<Request, ParseError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let result = read_request(&mut stream);
        writer.join().unwrap();
        result
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            roundtrip("POST /v1/estimate?x=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/estimate");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, "body");
    }

    #[test]
    fn parses_bare_get_with_lf_lines() {
        let req = roundtrip("GET /v1/metrics HTTP/1.1\n\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_and_oversized() {
        assert_eq!(roundtrip("NOT-HTTP\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(roundtrip("GET / HTTP/2\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            roundtrip("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            roundtrip(&format!(
                "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY + 1
            ))
            .unwrap_err()
            .status,
            413
        );
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE + 1));
        assert_eq!(roundtrip(&long).unwrap_err().status, 413);
    }

    #[test]
    fn response_serializes_with_length_and_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut text = String::new();
            s.read_to_string(&mut text).unwrap();
            text
        });
        let (mut stream, _) = listener.accept().unwrap();
        Response::json(200, "{\"ok\":true}")
            .write_to(&mut stream)
            .unwrap();
        drop(stream);
        let text = reader.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 11\r\n"), "{text}");
        assert!(text.contains("connection: close"), "{text}");
        assert!(text.ends_with("{\"ok\":true}"), "{text}");
    }
}
