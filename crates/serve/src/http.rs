//! A small HTTP/1.1 subset over `std::net`: exactly what the prediction
//! service needs, nothing more.
//!
//! Requests are parsed from the socket with hard limits (request-line
//! size, header count, body size) so a misbehaving client cannot make a
//! worker allocate unboundedly. Connections are **persistent** by
//! default (HTTP/1.1 keep-alive): a client — in particular the router,
//! which funnels many clients' requests into a few shard connections —
//! pays the TCP connect once and pipelines request/response cycles
//! sequentially. `Connection: close` (or HTTP/1.0 without
//! `keep-alive`) restores the one-shot behavior, and the server always
//! answers with an explicit `connection:` header so clients never have
//! to guess.
//!
//! Framing is strict, because a keep-alive parser that guesses wrong
//! about where one request ends hands the *rest of the body* to the
//! next parse — a request-smuggling vector once the router multiplexes
//! many clients onto shared shard connections. Bodies are framed by
//! `Content-Length` only: any `Transfer-Encoding` header, conflicting
//! duplicate `Content-Length` values, and non-digit lengths (`+10`) are
//! all refused with 400, and the connection closes (see the "HTTP
//! conformance" section of `docs/API.md`).

use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Longest accepted request line (method + path + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body (models are small XML documents).
pub const MAX_BODY: usize = 8 * 1024 * 1024;
/// Header carrying the request's trace ID, in both directions.
pub const TRACE_HEADER: &str = "x-prophet-trace";
/// Longest accepted client-supplied trace ID.
pub const MAX_TRACE_LEN: usize = 64;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path without query string.
    pub path: String,
    /// Raw query string (after `?`, empty when absent).
    pub query: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: String,
    /// Whether the client is willing to reuse this connection for
    /// another request: HTTP/1.1 unless `Connection: close`, HTTP/1.0
    /// only with an explicit `Connection: keep-alive`.
    pub keep_alive: bool,
    /// Trace ID for this request: the sanitized `X-Prophet-Trace`
    /// header when the client supplied one, a generated ID otherwise.
    pub trace: String,
}

impl Request {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Value of a `key=value` pair in the query string, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }
}

/// A trace ID a client may supply: 1..=64 chars from `[A-Za-z0-9._-]`.
/// Anything else (control bytes, header-splitting attempts, novels) is
/// discarded and replaced by a generated ID.
pub fn valid_trace(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_TRACE_LEN
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

/// Generate a process-unique trace ID (`t-<nonce>-<seq>`): a per-boot
/// random nonce so IDs from different processes don't collide, plus a
/// monotone per-process sequence number.
pub fn generate_trace() -> String {
    static NONCE: OnceLock<u64> = OnceLock::new();
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let nonce = NONCE.get_or_init(|| {
        use std::hash::{BuildHasher, Hasher};
        let mut h = std::collections::hash_map::RandomState::new().build_hasher();
        h.write_u64(u64::from(std::process::id()));
        h.finish()
    });
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    format!("t-{:08x}-{seq:x}", nonce & 0xffff_ffff)
}

/// A response ready to serialize.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// The body text.
    pub body: String,
    /// Trace ID echoed back as an `x-prophet-trace` header, when set.
    pub trace: Option<String>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into(),
            trace: None,
        }
    }

    /// A Prometheus text-exposition (format 0.0.4) response.
    pub fn prometheus(body: impl Into<String>) -> Self {
        Self {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: body.into(),
            trace: None,
        }
    }

    /// Serialize and write this response, closing the connection.
    pub fn write_to<W: Write>(&self, stream: &mut W) -> std::io::Result<()> {
        self.write_with_connection(stream, false)
    }

    /// Serialize and write this response, announcing in the
    /// `connection:` header whether the server will keep the socket
    /// open for another request.
    pub fn write_with_connection<W: Write>(
        &self,
        stream: &mut W,
        keep_alive: bool,
    ) -> std::io::Result<()> {
        let trace_line = match &self.trace {
            Some(id) => format!("{TRACE_HEADER}: {id}\r\n"),
            None => String::new(),
        };
        let head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n{}connection: {}\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            trace_line,
            if keep_alive { "keep-alive" } else { "close" }
        );
        // One write for head + body: a split write of two small
        // packets triggers the Nagle/delayed-ACK stall (~40 ms) on
        // keep-alive connections.
        let mut frame = head.into_bytes();
        frame.extend_from_slice(self.body.as_bytes());
        stream.write_all(&frame)?;
        stream.flush()
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        _ => "Unknown",
    }
}

/// A request the parser refused, with the status it should be answered
/// with (`400` malformed, `413` over a limit).
#[derive(Debug)]
pub struct ParseError {
    /// Status code to answer with.
    pub status: u16,
    /// Human-readable reason.
    pub message: String,
}

impl ParseError {
    fn bad(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }

    fn too_large(message: impl Into<String>) -> Self {
        Self {
            status: 413,
            message: message.into(),
        }
    }
}

/// Read and parse one request from `reader` (typically a `BufReader`
/// over the socket, reused across requests on a keep-alive connection).
pub fn read_request<R: Read>(reader: &mut R) -> Result<Request, ParseError> {
    let line = read_line(reader, MAX_REQUEST_LINE)?;
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(ParseError::bad(format!("malformed request line `{line}`"))),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::bad(format!("unsupported version `{version}`")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, MAX_REQUEST_LINE)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::too_large("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::bad(format!("malformed header `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // This parser frames bodies by `Content-Length` only. A request
    // bearing `Transfer-Encoding` would leave its chunked body on the
    // socket to be parsed as the *next* request of a keep-alive
    // connection — a request-smuggling vector behind the forwarding
    // router — so any such request is refused outright (RFC 9112 §6.1
    // permits a server to reject `Transfer-Encoding`; 400 closes the
    // connection, discarding the unread body).
    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(ParseError::bad(
            "transfer-encoding is not supported; frame the body with content-length",
        ));
    }
    let length = content_length(&headers)?;
    if length > MAX_BODY {
        return Err(ParseError::too_large(format!(
            "body of {length} bytes exceeds the {MAX_BODY}-byte limit"
        )));
    }
    let mut body = vec![0u8; length];
    reader
        .read_exact(&mut body)
        .map_err(|e| ParseError::bad(format!("short body: {e}")))?;
    let body = String::from_utf8(body).map_err(|_| ParseError::bad("body is not valid UTF-8"))?;

    // `Connection` is a comma-separated token list (`close, foo` must
    // close); every instance of the header contributes tokens.
    let mut close = false;
    let mut keep = false;
    for (_, value) in headers.iter().filter(|(n, _)| n == "connection") {
        for token in value.split(',') {
            let token = token.trim();
            close |= token.eq_ignore_ascii_case("close");
            keep |= token.eq_ignore_ascii_case("keep-alive");
        }
    }
    let keep_alive = match version {
        "HTTP/1.0" => keep && !close,
        _ => !close,
    };

    // A well-formed client-supplied trace ID is adopted verbatim so one
    // request can be followed across the router into a shard; anything
    // unusable (or absent) gets a fresh generated ID.
    let trace = headers
        .iter()
        .find(|(n, _)| n == TRACE_HEADER)
        .map(|(_, v)| v.as_str())
        .filter(|v| valid_trace(v))
        .map(String::from)
        .unwrap_or_else(generate_trace);

    Ok(Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        headers,
        body,
        keep_alive,
        trace,
    })
}

/// The request's body length per RFC 9112 §6.3: all `Content-Length`
/// headers must agree (differing duplicates are a smuggling vector —
/// two parsers picking different values split one stream into different
/// requests), and values must be digits only (`usize::from_str` alone
/// would accept `+10`, which a peer proxy may parse differently).
fn content_length(headers: &[(String, String)]) -> Result<usize, ParseError> {
    let mut length: Option<usize> = None;
    for (_, value) in headers.iter().filter(|(n, _)| n == "content-length") {
        if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseError::bad(format!("bad content-length `{value}`")));
        }
        let parsed: usize = value
            .parse()
            .map_err(|_| ParseError::bad(format!("bad content-length `{value}`")))?;
        match length {
            // Identical duplicates collapse to one; differing values
            // make the message length ambiguous.
            Some(seen) if seen != parsed => {
                return Err(ParseError::bad(format!(
                    "conflicting content-length values `{seen}` and `{parsed}`"
                )));
            }
            _ => length = Some(parsed),
        }
    }
    Ok(length.unwrap_or(0))
}

/// Read one CRLF (or LF) terminated line, bounded by `limit` bytes.
fn read_line<R: Read>(reader: &mut R, limit: usize) -> Result<String, ParseError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) => return Err(ParseError::bad(format!("connection ended mid-line: {e}"))),
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line).map_err(|_| ParseError::bad("non-UTF-8 in header"));
        }
        line.push(byte[0]);
        if line.len() > limit {
            return Err(ParseError::too_large("request line or header too long"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &str) -> Result<Request, ParseError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let result = read_request(&mut stream);
        writer.join().unwrap();
        result
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            roundtrip("POST /v1/estimate?x=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/estimate");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.query_param("y"), None);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, "body");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn trace_header_is_adopted_when_valid_and_replaced_otherwise() {
        let req = roundtrip("GET / HTTP/1.1\r\nX-Prophet-Trace: t-123\r\n\r\n").unwrap();
        assert_eq!(req.trace, "t-123");
        // No header: a generated ID, unique per request.
        let a = roundtrip("GET / HTTP/1.1\r\n\r\n").unwrap();
        let b = roundtrip("GET / HTTP/1.1\r\n\r\n").unwrap();
        assert!(a.trace.starts_with("t-"), "{}", a.trace);
        assert_ne!(a.trace, b.trace);
        // Unusable IDs (bad chars, oversized) are replaced, not echoed.
        for bad in ["has space", "quote\"", &"x".repeat(MAX_TRACE_LEN + 1)] {
            let req = roundtrip(&format!("GET / HTTP/1.1\r\nX-Prophet-Trace: {bad}\r\n\r\n"));
            let req = req.unwrap();
            assert_ne!(req.trace, *bad);
            assert!(valid_trace(&req.trace), "{}", req.trace);
        }
    }

    #[test]
    fn response_emits_trace_header_when_set() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut text = String::new();
            s.read_to_string(&mut text).unwrap();
            text
        });
        let (mut stream, _) = listener.accept().unwrap();
        let mut resp = Response::json(200, "{}");
        resp.trace = Some("t-echo".into());
        resp.write_to(&mut stream).unwrap();
        drop(stream);
        let text = reader.join().unwrap();
        assert!(text.contains("x-prophet-trace: t-echo\r\n"), "{text}");
    }

    #[test]
    fn parses_bare_get_with_lf_lines() {
        let req = roundtrip("GET /v1/metrics HTTP/1.1\n\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let req = roundtrip("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = roundtrip("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");
        let req = roundtrip("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn rejects_malformed_and_oversized() {
        assert_eq!(roundtrip("NOT-HTTP\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(roundtrip("GET / HTTP/2\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            roundtrip("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            roundtrip(&format!(
                "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY + 1
            ))
            .unwrap_err()
            .status,
            413
        );
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE + 1));
        assert_eq!(roundtrip(&long).unwrap_err().status, 413);
    }

    #[test]
    fn rejects_any_transfer_encoding() {
        // A chunked body would be parsed as the next request on a
        // keep-alive connection; every TE flavor must bounce.
        for te in ["chunked", "identity", "gzip, chunked", "Chunked"] {
            let err = roundtrip(&format!(
                "POST / HTTP/1.1\r\nTransfer-Encoding: {te}\r\n\r\n0\r\n\r\n"
            ))
            .unwrap_err();
            assert_eq!(err.status, 400, "TE `{te}`: {}", err.message);
        }
        // Even combined with a valid Content-Length.
        let err = roundtrip(
            "POST / HTTP/1.1\r\nContent-Length: 4\r\nTransfer-Encoding: chunked\r\n\r\nbody",
        )
        .unwrap_err();
        assert_eq!(err.status, 400);
    }

    #[test]
    fn rejects_conflicting_content_lengths() {
        let err =
            roundtrip("POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\nbody")
                .unwrap_err();
        assert_eq!(err.status, 400, "{}", err.message);
        // Identical duplicates collapse to one (RFC 9112 §6.3 allows it).
        let req =
            roundtrip("POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody")
                .unwrap();
        assert_eq!(req.body, "body");
    }

    #[test]
    fn rejects_non_digit_content_lengths() {
        // `usize::from_str` accepts a leading `+`; a peer proxy may not,
        // so anything but pure digits is ambiguous framing.
        // (`4 ` is absent: surrounding whitespace is OWS, trimmed at
        // header parse before the digits check — unambiguous framing.)
        for bad in ["+10", "-1", "0x10", "4,4", "", "۴"] {
            let err = roundtrip(&format!(
                "POST / HTTP/1.1\r\nContent-Length: {bad}\r\n\r\nbodybodybody"
            ))
            .unwrap_err();
            assert_eq!(err.status, 400, "length `{bad}`: {}", err.message);
        }
    }

    #[test]
    fn connection_is_a_token_list() {
        // `close` anywhere in the list must close, regardless of case
        // or padding, across any number of Connection headers.
        let req = roundtrip("GET / HTTP/1.1\r\nConnection: close, foo\r\n\r\n").unwrap();
        assert!(!req.keep_alive, "`close, foo` must close");
        let req = roundtrip("GET / HTTP/1.1\r\nConnection: foo ,  Close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req =
            roundtrip("GET / HTTP/1.1\r\nConnection: foo\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive, "second Connection header must count");
        // A token merely *containing* `close` is not `close`.
        let req = roundtrip("GET / HTTP/1.1\r\nConnection: closefoo\r\n\r\n").unwrap();
        assert!(req.keep_alive);
        // HTTP/1.0: keep-alive in a list enables reuse, unless close
        // also appears.
        let req = roundtrip("GET / HTTP/1.0\r\nConnection: keep-alive, foo\r\n\r\n").unwrap();
        assert!(req.keep_alive);
        let req = roundtrip("GET / HTTP/1.0\r\nConnection: keep-alive, close\r\n\r\n").unwrap();
        assert!(!req.keep_alive, "close wins over keep-alive");
    }

    #[test]
    fn response_serializes_with_length_and_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut text = String::new();
            s.read_to_string(&mut text).unwrap();
            text
        });
        let (mut stream, _) = listener.accept().unwrap();
        Response::json(200, "{\"ok\":true}")
            .write_to(&mut stream)
            .unwrap();
        drop(stream);
        let text = reader.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 11\r\n"), "{text}");
        assert!(text.contains("connection: close"), "{text}");
        assert!(text.ends_with("{\"ok\":true}"), "{text}");
    }
}
