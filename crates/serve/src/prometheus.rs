//! Prometheus text exposition (format 0.0.4) building blocks, shared
//! by the shard's and the router's `GET /v1/metrics?format=prometheus`.
//!
//! The exposition contract the tests lint for: every series is preceded
//! by a `# TYPE` line for its family, histogram `_bucket` series are
//! cumulative and monotone with a closing `le="+Inf"` bucket equal to
//! `_count`, bucket bounds are rendered in seconds, and label values
//! escape `\`, `"` and newlines.

use crate::json::Json;
use crate::metrics::HistogramSnapshot;

/// Escape a label value per the exposition format: backslash, double
/// quote, and line feed.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

/// Render a microsecond quantity in seconds, trimming to a compact
/// decimal (`10` not `10.000000`, `0.00001` not `1e-5`).
fn seconds(us: f64) -> String {
    let s = us / 1e6;
    if s == s.trunc() && s.abs() < 1e15 {
        format!("{}", s as i64)
    } else {
        // `{}` on f64 prints the shortest round-tripping decimal,
        // which for our magnitudes never falls back to exponent form.
        let text = format!("{s}");
        if text.contains('e') || text.contains('E') {
            format!("{s:.9}")
        } else {
            text
        }
    }
}

/// Incrementally built exposition document.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

impl Exposition {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emit the `# TYPE` line opening a metric family. Call once per
    /// family, before any of its series.
    pub fn family(&mut self, name: &str, kind: &str) {
        self.out.push_str("# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    /// Emit one integer-valued series sample.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.out
            .push_str(&format!("{name}{} {value}\n", render_labels(labels)));
    }

    /// Emit one float-valued series sample.
    pub fn sample_f64(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out
            .push_str(&format!("{name}{} {value}\n", render_labels(labels)));
    }

    /// Emit the `_bucket`/`_sum`/`_count` series of one histogram,
    /// with bounds converted from microseconds to seconds. `labels`
    /// are repeated on every series (plus `le` on the buckets).
    pub fn histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        bounds_us: &[u64],
        counts: &[u64],
        total_us: u64,
    ) {
        let mut cumulative = 0u64;
        for (i, &count) in counts.iter().enumerate() {
            cumulative += count;
            let le = match bounds_us.get(i) {
                Some(&bound) => seconds(bound as f64),
                None => "+Inf".to_string(),
            };
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", &le));
            self.sample(&format!("{name}_bucket"), &with_le, cumulative);
        }
        self.sample_f64(&format!("{name}_sum"), labels, total_us as f64 / 1e6);
        self.sample(&format!("{name}_count"), labels, cumulative);
    }

    /// [`Exposition::histogram`] straight from a snapshot.
    pub fn histogram_snapshot(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        snap: &HistogramSnapshot,
    ) {
        self.histogram(
            name,
            labels,
            &crate::metrics::BUCKET_BOUNDS_US,
            &snap.counts,
            snap.total_us,
        );
    }

    /// Emit p50/p90/p99 gauge samples for a histogram, in seconds.
    pub fn quantiles(&mut self, name: &str, labels: &[(&str, &str)], snap: &HistogramSnapshot) {
        for (q, label) in [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99")] {
            if let Some(us) = snap.quantile_us(q) {
                let mut with_q: Vec<(&str, &str)> = labels.to_vec();
                with_q.push(("quantile", label));
                self.sample_f64(name, &with_q, us / 1e6);
            }
        }
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Decode a histogram section (`{"bounds_us": [...], "counts": [...],
/// "total_us": N}`) from a shard's JSON metrics document, so the
/// router can re-expose per-shard histograms under its own labels.
pub fn histogram_from_json(json: &Json) -> Option<(Vec<u64>, Vec<u64>, u64)> {
    let nums = |key: &str| -> Option<Vec<u64>> {
        json.get(key)?
            .as_array()?
            .iter()
            .map(|v| v.as_f64().map(|f| f as u64))
            .collect()
    };
    let bounds = nums("bounds_us")?;
    let counts = nums("counts")?;
    if counts.len() != bounds.len() + 1 {
        return None;
    }
    let total_us = json.get("total_us")?.as_f64()? as u64;
    Some((bounds, counts, total_us))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    #[test]
    fn label_escaping_covers_backslash_quote_newline() {
        assert_eq!(escape_label(r#"a\b"c"#), r#"a\\b\"c"#);
        assert_eq!(escape_label("x\ny"), "x\\ny");
        let mut e = Exposition::new();
        e.family("m", "counter");
        e.sample("m", &[("shard", "a\"b")], 1);
        assert!(e.finish().contains(r#"m{shard="a\"b"} 1"#));
    }

    #[test]
    fn histogram_series_are_cumulative_with_inf_equal_to_count() {
        let h = Histogram::default();
        h.record_us(5); // bucket 0 (<= 10µs)
        h.record_us(50); // bucket 1
        h.record_us(50);
        let mut e = Exposition::new();
        e.family("d", "histogram");
        e.histogram_snapshot("d", &[("endpoint", "estimate")], &h.snapshot());
        let text = e.finish();
        assert!(
            text.contains("d_bucket{endpoint=\"estimate\",le=\"0.00001\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("d_bucket{endpoint=\"estimate\",le=\"0.0001\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("d_bucket{endpoint=\"estimate\",le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("d_count{endpoint=\"estimate\"} 3"), "{text}");
        // Sum is in seconds: 105µs.
        assert!(
            text.contains("d_sum{endpoint=\"estimate\"} 0.000105"),
            "{text}"
        );
    }

    #[test]
    fn seconds_rendering_avoids_exponent_form() {
        for &us in crate::metrics::BUCKET_BOUNDS_US.iter() {
            let text = seconds(us as f64);
            assert!(!text.contains('e') && !text.contains('E'), "{text}");
            let parsed: f64 = text.parse().unwrap();
            assert!((parsed - us as f64 / 1e6).abs() < 1e-12);
        }
        assert_eq!(seconds(10_000_000.0), "10");
    }

    #[test]
    fn shard_histograms_round_trip_through_json() {
        let h = Histogram::default();
        h.record_us(42);
        let json = h.snapshot().to_json();
        let (bounds, counts, total) = histogram_from_json(&json).unwrap();
        assert_eq!(bounds, crate::metrics::BUCKET_BOUNDS_US.to_vec());
        assert_eq!(counts.iter().sum::<u64>(), 1);
        assert_eq!(total, 42);
    }
}
