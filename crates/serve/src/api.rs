//! Endpoint handlers: JSON in, JSON out, every model routed through the
//! shared [`SessionPool`].
//!
//! | endpoint | body | answers |
//! |---|---|---|
//! | `POST /v1/check` | `{model\|model_name, mcf?}` | checker diagnostics |
//! | `POST /v1/estimate` | `+ nodes/cpus/processes/threads/seed/backend` | one prediction |
//! | `POST /v1/sweep` | `+ nodes: [..], workers` | an SP-grid table |
//! | `POST /v1/optimize` | `+ objective/deadline/max_cost/...` | the Pareto frontier of an inverse query |
//! | `GET /v1/models` | — | bundled demo workloads, by name |
//! | `GET /v1/metrics` | — | request/latency/pool/elab/store counters |
//! | `GET /v1/requests` | — | recent-request span journal (trace IDs) |
//! | `POST /v1/warm` | `{model\|model_name, mcf?}` | prime the pool (token-guarded) |
//! | `POST /v1/evict` | `{keys: [{model, mcf}, ..]}` | drop pooled sessions (token-guarded) |
//! | `POST /v1/shutdown` | — | acknowledges, then drains the server |
//!
//! `/v1/warm` and `/v1/evict` are the shard half of the router's
//! rebalance handoff: when fleet membership changes, the router warms
//! each moved key's *new* owner (a disk hit under a shared store, a
//! compile otherwise), then evicts it from the old owner's pool — both
//! behind the same operator token as `/v1/shutdown`.
//!
//! `GET /v1/metrics?format=prometheus` answers the same counters as
//! text exposition; every request is measured into per-phase spans and
//! journaled under its trace ID (see `docs/OBSERVABILITY.md`).
//!
//! Models are passed either inline (`"model": "<xml...>"`) or by bundled
//! name (`"model_name": "jacobi"`); both resolve to the same content
//! key, so clients repeating a model — in either spelling — share one
//! compiled session.

use crate::http::{Request, Response};
use crate::json::{self, Json};
use crate::metrics::{self, Metrics};
use crate::pool::SessionPool;
use crate::prometheus::Exposition;
use crate::spans::{Phase, SpanRecorder, SpanSet, PHASE_NAMES};
use prophet_check::{check_model, McfConfig, Severity};
use prophet_core::{render_chain_inline, Backend, Scenario, Session, SweepConfig, SweepPoint};
use prophet_machine::SystemParams;
use prophet_opt::{OptError, OptimizeRequest, OptimizeSession};
use prophet_uml::Model;
use prophet_workloads::models;
use std::sync::Arc;

/// Everything the handlers share across connections.
#[derive(Debug, Default)]
pub struct AppState {
    /// Compiled sessions, keyed by model/MCF content.
    pub pool: SessionPool,
    /// Request counters and latency histograms.
    pub metrics: Metrics,
    /// Per-request phase spans: the `GET /v1/requests` ring journal
    /// plus the aggregated per-phase histograms of `/v1/metrics`.
    pub spans: SpanRecorder,
    /// Lifetime counter baseline loaded from the store's metrics
    /// checkpoint at boot (empty without `--store`): the `lifetime`
    /// section of `/v1/metrics` reports baseline + since-boot, so
    /// monotone counters survive a restart.
    pub baseline: Vec<(String, u64)>,
    /// Metrics checkpoints written this boot (by the checkpoint thread
    /// `server::serve` runs when a store is attached).
    pub checkpoints: std::sync::atomic::AtomicU64,
    /// Operator bearer token guarding `POST /v1/shutdown`; `None`
    /// leaves the endpoint open (single-operator dev setups).
    pub shutdown_token: Option<String>,
}

impl AppState {
    /// State over a caller-built pool (e.g. one backed by a persistent
    /// artifact store); metrics start at zero.
    pub fn with_pool(pool: SessionPool) -> Self {
        Self {
            pool,
            ..Self::default()
        }
    }

    /// Since-boot counters merged with the boot-time baseline: the
    /// lifetime values `/v1/metrics` reports and the checkpoint thread
    /// persists. Checkpoints store *lifetime* values, so counters stay
    /// monotone across any number of restarts.
    pub fn lifetime_counters(&self) -> Vec<(String, u64)> {
        let mut out = self.metrics.flat_counters();
        for (name, value) in &self.baseline {
            match out.iter_mut().find(|(n, _)| n == name) {
                Some((_, v)) => *v = v.saturating_add(*value),
                None => out.push((name.clone(), *value)),
            }
        }
        out
    }
}

/// Whether a request carries `Authorization: Bearer <expected>`.
/// Shared with the router, which guards its own shutdown the same way.
pub fn bearer_authorized(req: &Request, expected: &str) -> bool {
    req.header("authorization")
        .and_then(|h| h.strip_prefix("Bearer "))
        .map(str::trim)
        == Some(expected)
}

/// The bundled demo workloads servable by name, with the same default
/// parameterizations as `prophet demo`.
pub fn demo_models() -> Vec<(&'static str, &'static str)> {
    vec![
        ("sample", "the paper's Figure-5/8 sample model"),
        ("kernel6", "Livermore kernel 6 (general linear recurrence)"),
        ("jacobi", "distributed Jacobi relaxation with halo exchange"),
        ("lapw0", "LAPW0 material-science phase (ASKALON case study)"),
        ("pipeline", "point-to-point ring pipeline"),
        ("master_worker", "master/worker task farm"),
        (
            "task_farm",
            "iterative broadcast/reduce task farm with stateful steering",
        ),
        (
            "branching_pipeline",
            "pipeline with parity-branched stage costs",
        ),
        ("halo_ring", "wrap-around ring halo exchange with step norm"),
        (
            "mapreduce",
            "scatter/map/shuffle/reduce job with paired shuffle",
        ),
    ]
}

/// A bundled demo model by name.
///
/// Models are built once per process and handed out pre-normalized
/// (already through one serialize→parse roundtrip), so per-request work
/// is a clone and the pool-key digest never needs to re-normalize them.
pub fn demo_model(name: &str) -> Option<Model> {
    static CACHE: std::sync::OnceLock<Vec<(&'static str, Model)>> = std::sync::OnceLock::new();
    let cache = CACHE.get_or_init(|| {
        [
            ("sample", models::sample_model()),
            ("kernel6", models::kernel6_model(1000, 10, 1e-9)),
            ("jacobi", models::jacobi_model(1_000_000, 20, 1e-8)),
            ("lapw0", models::lapw0_model(64, 32, 1e-4)),
            ("pipeline", models::pipeline_model(32, 0.01, 4096)),
            ("master_worker", models::master_worker_model(64, 0.01, 256)),
            ("task_farm", models::task_farm_model(8, 0.002, 512)),
            (
                "branching_pipeline",
                models::branching_pipeline_model(24, 0.004, 2048),
            ),
            ("halo_ring", models::halo_ring_model(16, 0.003, 4096)),
            ("mapreduce", models::mapreduce_model(4096, 1e-6, 64)),
        ]
        .into_iter()
        .map(|(name, model)| {
            let normalized =
                prophet_uml::xmi::model_from_xml(&prophet_uml::xmi::model_to_xml(&model))
                    .expect("bundled models roundtrip");
            (name, normalized)
        })
        .collect()
    });
    cache
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, m)| m.clone())
}

/// An error response: status + `{"error": message}` body.
fn error_response(status: u16, message: impl Into<String>) -> Response {
    Response::json(
        status,
        Json::object([("error", Json::from(message.into()))]).encode(),
    )
}

/// Route one request. The bool is the shutdown signal: `true` after a
/// `POST /v1/shutdown` has been acknowledged.
///
/// Every request — including errors and 404s — leaves a span-set entry
/// in the journal under its trace ID, recorded after the response is
/// built so the entry carries the final status and total time.
pub fn handle(state: &AppState, req: &Request) -> (Response, bool) {
    let mut spans = SpanSet::start();
    let (response, stop) = route(state, req, &mut spans);
    state.spans.record(
        &req.trace,
        metrics::endpoint_index(&req.method, &req.path),
        response.status,
        &spans,
    );
    (response, stop)
}

fn route(state: &AppState, req: &Request, spans: &mut SpanSet) -> (Response, bool) {
    let response = match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/check") => handle_check(req, spans),
        ("POST", "/v1/estimate") => handle_estimate(state, req, spans),
        ("POST", "/v1/sweep") => handle_sweep(state, req, spans),
        ("POST", "/v1/optimize") => handle_optimize(state, req, spans),
        ("GET", "/v1/models") => handle_models(),
        ("GET", "/v1/metrics") => handle_metrics(state, req),
        ("GET", "/v1/requests") => handle_requests(state),
        ("POST", "/v1/warm") => handle_warm(state, req, spans),
        ("POST", "/v1/evict") => handle_evict(state, req),
        ("POST", "/v1/shutdown") => {
            // Shutdown is operator-only when a token is configured: the
            // prediction endpoints stay open, but draining the fleet
            // requires `Authorization: Bearer <token>`.
            if let Some(expected) = &state.shutdown_token {
                if !bearer_authorized(req, expected) {
                    return (
                        error_response(401, "shutdown requires a valid bearer token"),
                        false,
                    );
                }
            }
            let ack = Response::json(200, Json::object([("ok", Json::from(true))]).encode());
            return (ack, true);
        }
        (
            _,
            "/v1/check" | "/v1/estimate" | "/v1/sweep" | "/v1/optimize" | "/v1/models"
            | "/v1/metrics" | "/v1/requests" | "/v1/warm" | "/v1/evict" | "/v1/shutdown",
        ) => error_response(405, format!("{} not allowed here", req.method)),
        _ => error_response(404, format!("no such endpoint `{}`", req.path)),
    };
    (response, false)
}

/// Parse the request body as a JSON object.
fn parse_body(req: &Request) -> Result<Json, Response> {
    let body = json::parse(&req.body).map_err(|e| error_response(400, e.to_string()))?;
    match body {
        Json::Object(_) => Ok(body),
        other => Err(error_response(
            400,
            format!("request body must be a JSON object, got {other}"),
        )),
    }
}

/// Resolve the model named or embedded in a request body. Public
/// because the router resolves the same members to compute the content
/// digest it routes by — router and shard must agree on the key.
pub fn resolve_model(body: &Json) -> Result<Model, Response> {
    match (body.get("model"), body.get("model_name")) {
        (Some(_), Some(_)) => Err(error_response(
            400,
            "pass either `model` (inline XML) or `model_name`, not both",
        )),
        (Some(xml), None) => {
            let xml = xml
                .as_str()
                .ok_or_else(|| error_response(400, "`model` must be an XML string"))?;
            prophet_uml::xmi::model_from_xml(xml)
                .map_err(|e| error_response(422, format!("model XML does not parse: {e}")))
        }
        (None, Some(name)) => {
            let name = name
                .as_str()
                .ok_or_else(|| error_response(400, "`model_name` must be a string"))?;
            demo_model(name).ok_or_else(|| {
                let known: Vec<&str> = demo_models().iter().map(|(n, _)| *n).collect();
                error_response(
                    404,
                    format!(
                        "unknown model `{name}`; bundled models: {}",
                        known.join(", ")
                    ),
                )
            })
        }
        (None, None) => Err(error_response(
            400,
            "missing `model` (inline XML) or `model_name`",
        )),
    }
}

/// Resolve the optional `mcf` member. Public for the router (see
/// [`resolve_model`]).
pub fn resolve_mcf(body: &Json) -> Result<McfConfig, Response> {
    match body.get("mcf") {
        None => Ok(McfConfig::default()),
        Some(xml) => {
            let xml = xml
                .as_str()
                .ok_or_else(|| error_response(400, "`mcf` must be an XML string"))?;
            McfConfig::from_xml(xml)
                .map_err(|e| error_response(422, format!("MCF XML does not parse: {e}")))
        }
    }
}

/// A `usize` member with a default; rejects non-integers.
fn usize_member(body: &Json, key: &str, default: usize) -> Result<usize, Response> {
    match body.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_usize()
            .ok_or_else(|| error_response(400, format!("`{key}` must be a non-negative integer"))),
    }
}

/// An optional `f64` member; rejects non-numbers.
fn f64_member(body: &Json, key: &str) -> Result<Option<f64>, Response> {
    match body.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| error_response(400, format!("`{key}` must be a number"))),
    }
}

/// An axis of counts (the `nodes`/`cpus` arrays of sweep and optimize):
/// every element must be a positive integer, repeats collapse to one
/// point. A zero is rejected here by name — left through, it used to
/// reach `SystemParams::validate` as a degenerate per-point failure row
/// instead of the 400 the request deserves.
fn count_axis(body: &Json, key: &str) -> Result<Option<Vec<usize>>, Response> {
    let Some(v) = body.get(key) else {
        return Ok(None);
    };
    let items = v.as_array().filter(|a| !a.is_empty()).ok_or_else(|| {
        error_response(400, format!("`{key}` must be a non-empty array of counts"))
    })?;
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let n = item.as_usize().ok_or_else(|| {
            error_response(
                400,
                format!("bad count {item} in `{key}`: must be an integer"),
            )
        })?;
        if n == 0 {
            return Err(error_response(
                400,
                format!("bad count `0` in `{key}`: counts must be at least 1"),
            ));
        }
        if !out.contains(&n) {
            out.push(n);
        }
    }
    Ok(Some(out))
}

/// System parameters from a request body (defaults matching the CLI).
fn resolve_sp(body: &Json) -> Result<SystemParams, Response> {
    let nodes = usize_member(body, "nodes", 1)?;
    let cpus = usize_member(body, "cpus", 1)?;
    let sp = SystemParams {
        nodes,
        cpus_per_node: cpus,
        processes: usize_member(body, "processes", nodes * cpus)?,
        threads_per_process: usize_member(body, "threads", 1)?,
    };
    sp.validate()
        .map_err(|e| error_response(422, e.to_string()))?;
    Ok(sp)
}

/// The evaluation backend from a request body.
fn resolve_backend(body: &Json) -> Result<Backend, Response> {
    match body.get("backend") {
        None => Ok(Backend::default()),
        Some(v) => v
            .as_str()
            .ok_or_else(|| error_response(400, "`backend` must be a string"))?
            .parse()
            .map_err(|e: String| error_response(400, e)),
    }
}

/// The pooled session for a request body's model/MCF, attributing the
/// checkout's time to the pool / store-load / compile spans: the pool
/// checkout reports how long it spent on disk and compiling, and the
/// remainder of the wall time (key hashing, lock waits, blocking on
/// another thread's in-flight compile) is pool time.
fn resolve_session(
    state: &AppState,
    body: &Json,
    spans: &mut SpanSet,
) -> Result<(Arc<Session>, bool), Response> {
    let model = resolve_model(body)?;
    let mcf = resolve_mcf(body)?;
    let start = std::time::Instant::now();
    let result = state.pool.checkout_timed(&model, &mcf);
    let total_us = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
    let timing = match &result {
        Ok((_, _, timing)) => *timing,
        Err(_) => Default::default(),
    };
    spans.add_us(Phase::StoreLoad, timing.store_us);
    spans.add_us(Phase::Compile, timing.compile_us);
    spans.add_us(
        Phase::Pool,
        total_us.saturating_sub(timing.store_us + timing.compile_us),
    );
    spans.resync();
    result
        .map(|(session, reused, _)| (session, reused))
        .map_err(|chain| error_response(422, chain))
}

fn handle_check(req: &Request, spans: &mut SpanSet) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let (model, mcf) = match resolve_model(&body).and_then(|m| Ok((m, resolve_mcf(&body)?))) {
        Ok(pair) => pair,
        Err(r) => return r,
    };
    spans.mark(Phase::Parse);
    // The check endpoint reports *all* findings, warnings included, so
    // it runs the checker directly instead of compiling a session
    // (which would drop warnings on failing models).
    let diagnostics = check_model(&model, &mcf);
    let errors = diagnostics.iter().filter(|d| d.is_error()).count();
    let items: Vec<Json> = diagnostics
        .iter()
        .map(|d| {
            Json::object([
                ("rule", Json::from(d.rule.as_str())),
                (
                    "severity",
                    Json::from(match d.severity {
                        Severity::Error => "error",
                        Severity::Warning => "warning",
                    }),
                ),
                ("location", Json::from(d.location.as_str())),
                ("message", Json::from(d.message.as_str())),
            ])
        })
        .collect();
    spans.mark(Phase::Evaluate);
    let encoded = Json::object([
        ("model", Json::from(model.name.as_str())),
        ("ok", Json::from(errors == 0)),
        ("errors", Json::from(errors)),
        ("diagnostics", Json::Array(items)),
    ])
    .encode();
    spans.mark(Phase::Encode);
    Response::json(200, encoded)
}

fn sp_json(sp: SystemParams) -> Json {
    Json::object([
        ("nodes", Json::from(sp.nodes)),
        ("cpus", Json::from(sp.cpus_per_node)),
        ("processes", Json::from(sp.processes)),
        ("threads", Json::from(sp.threads_per_process)),
    ])
}

fn elab_json(session: &Session) -> Json {
    let stats = session.elab_stats();
    Json::object([
        ("hits", Json::from(stats.hits)),
        ("misses", Json::from(stats.misses)),
        ("bypasses", Json::from(stats.bypasses)),
    ])
}

fn handle_estimate(state: &AppState, req: &Request, spans: &mut SpanSet) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let (sp, backend) = match resolve_sp(&body).and_then(|sp| Ok((sp, resolve_backend(&body)?))) {
        Ok(pair) => pair,
        Err(r) => return r,
    };
    let mut scenario = Scenario::new(sp).with_backend(backend).without_trace();
    if let Some(seed) = body.get("seed") {
        match seed.as_usize() {
            Some(seed) => scenario = scenario.with_seed(seed as u64),
            None => return error_response(400, "`seed` must be a non-negative integer"),
        }
    }
    spans.mark(Phase::Parse);
    let (session, reused) = match resolve_session(state, &body, spans) {
        Ok(pair) => pair,
        Err(r) => return r,
    };
    let elab_before = session.elab_stats();
    let evaluation = match session.evaluate(&scenario) {
        Ok(e) => e,
        Err(e) => return error_response(422, render_chain_inline(&e)),
    };
    let elab_after = session.elab_stats();
    spans.set_elab(
        elab_after.hits.saturating_sub(elab_before.hits),
        elab_after.misses.saturating_sub(elab_before.misses),
    );
    spans.mark(Phase::Evaluate);
    // A model can evaluate "successfully" to inf/NaN (e.g. an
    // overflowing cost expression). The JSON encoder would render that
    // as `"predicted_time": null` inside a 200 — a silent lie. Fail
    // loudly instead, naming the model and the SP point.
    if !evaluation.predicted_time.is_finite() {
        return error_response(
            500,
            format!(
                "model `{}` produced a non-finite prediction ({}) at nodes={} cpus={}",
                session.program().name,
                evaluation.predicted_time,
                sp.nodes,
                sp.cpus_per_node
            ),
        );
    }
    let encoded = Json::object([
        ("model", Json::from(session.program().name.as_str())),
        ("backend", Json::from(backend.to_string())),
        ("predicted_time", Json::from(evaluation.predicted_time)),
        (
            "events_processed",
            Json::from(evaluation.report.events_processed as u64),
        ),
        ("sp", sp_json(sp)),
        ("session", Json::object([("reused", Json::from(reused))])),
        ("elab", elab_json(&session)),
    ])
    .encode();
    spans.mark(Phase::Encode);
    Response::json(200, encoded)
}

fn handle_sweep(state: &AppState, req: &Request, spans: &mut SpanSet) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let nodes = match count_axis(&body, "nodes") {
        Ok(Some(nodes)) => nodes,
        Ok(None) => return error_response(400, "`nodes` must be a non-empty array of node counts"),
        Err(r) => return r,
    };
    let cpus = match usize_member(&body, "cpus", 1) {
        Ok(c) => c,
        Err(r) => return r,
    };
    let workers = match usize_member(&body, "workers", 0) {
        Ok(w) => w,
        Err(r) => return r,
    };
    let backend = match resolve_backend(&body) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let points: Vec<SweepPoint> = nodes
        .into_iter()
        .map(|n| SweepPoint {
            sp: SystemParams::flat_mpi(n, cpus),
        })
        .collect();
    spans.mark(Phase::Parse);
    let (session, reused) = match resolve_session(state, &body, spans) {
        Ok(pair) => pair,
        Err(r) => return r,
    };
    let config = SweepConfig {
        threads: workers,
        backend,
        ..Default::default()
    };
    let elab_before = session.elab_stats();
    let report = session.sweep_with(&points, &config, |_, _| {});
    let elab_after = session.elab_stats();
    spans.set_elab(
        elab_after.hits.saturating_sub(elab_before.hits),
        elab_after.misses.saturating_sub(elab_before.misses),
    );
    spans.mark(Phase::Evaluate);
    // Same guard as estimate: an Ok(inf/NaN) point must not reach the
    // encoder as a null time (and would poison every speedup column).
    if let Some(p) = report
        .points
        .iter()
        .find(|p| matches!(&p.outcome, Ok(t) if !t.is_finite()))
    {
        return error_response(
            500,
            format!(
                "model `{}` produced a non-finite prediction at nodes={} cpus={}",
                session.program().name,
                p.sp.nodes,
                p.sp.cpus_per_node
            ),
        );
    }
    let base = report.points.iter().find_map(|p| p.time());
    let rows: Vec<Json> = report
        .points
        .iter()
        .map(|p| {
            let mut row = vec![
                ("nodes".to_string(), Json::from(p.sp.nodes)),
                ("processes".to_string(), Json::from(p.sp.processes)),
            ];
            match &p.outcome {
                Ok(time) => {
                    row.push(("time".to_string(), Json::from(*time)));
                    if let Some(base) = base {
                        row.push(("speedup".to_string(), Json::from(base / time)));
                    }
                }
                Err(e) => row.push(("error".to_string(), Json::from(render_chain_inline(e)))),
            }
            Json::Object(row)
        })
        .collect();
    let encoded = Json::object([
        ("model", Json::from(session.program().name.as_str())),
        ("backend", Json::from(backend.to_string())),
        ("failures", Json::from(report.failures())),
        ("points", Json::Array(rows)),
        ("session", Json::object([("reused", Json::from(reused))])),
        ("elab", elab_json(&session)),
    ])
    .encode();
    spans.mark(Phase::Encode);
    Response::json(200, encoded)
}

fn handle_optimize(state: &AppState, req: &Request, spans: &mut SpanSet) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let mut oreq = OptimizeRequest::default();
    match count_axis(&body, "nodes") {
        Ok(Some(nodes)) => oreq.nodes = nodes,
        Ok(None) => {}
        Err(r) => return r,
    }
    match count_axis(&body, "cpus") {
        Ok(Some(cpus)) => oreq.cpus = cpus,
        Ok(None) => {}
        Err(r) => return r,
    }
    if let Some(v) = body.get("objective") {
        let s = match v.as_str() {
            Some(s) => s,
            None => return error_response(400, "`objective` must be a string"),
        };
        oreq.objective = match s.parse() {
            Ok(o) => o,
            Err(e) => return error_response(400, e),
        };
    }
    if let Some(v) = body.get("verify") {
        let s = match v.as_str() {
            Some(s) => s,
            None => return error_response(400, "`verify` must be a string"),
        };
        oreq.verify = match s.parse() {
            Ok(m) => m,
            Err(e) => return error_response(400, e),
        };
    }
    // Unlike estimate/sweep, a missing `backend` means the cheap
    // analytic search oracle, not the simulation default.
    if body.get("backend").is_some() {
        oreq.backend = match resolve_backend(&body) {
            Ok(b) => b,
            Err(r) => return r,
        };
    }
    let floats: [(&str, &mut Option<f64>); 2] = [
        ("deadline", &mut oreq.constraints.deadline),
        ("max_cost", &mut oreq.constraints.max_cost),
    ];
    for (key, slot) in floats {
        match f64_member(&body, key) {
            Ok(Some(v)) => *slot = Some(v),
            Ok(None) => {}
            Err(r) => return r,
        }
    }
    let weights: [(&str, &mut f64); 3] = [
        ("node_weight", &mut oreq.weights.per_node),
        ("cpu_weight", &mut oreq.weights.per_cpu),
        ("margin", &mut oreq.margin),
    ];
    for (key, slot) in weights {
        match f64_member(&body, key) {
            Ok(Some(v)) => *slot = v,
            Ok(None) => {}
            Err(r) => return r,
        }
    }
    oreq.stride = match usize_member(&body, "stride", oreq.stride) {
        Ok(s) => s,
        Err(r) => return r,
    };
    oreq.workers = match usize_member(&body, "workers", 0) {
        Ok(w) => w,
        Err(r) => return r,
    };
    // Validate before compiling: a malformed request should not cost
    // (or pollute the pool with) a session.
    let oreq = match oreq.normalized() {
        Ok(r) => r,
        Err(e) => return error_response(400, e.to_string()),
    };
    spans.mark(Phase::Parse);
    let (session, reused) = match resolve_session(state, &body, spans) {
        Ok(pair) => pair,
        Err(r) => return r,
    };
    let elab_before = session.elab_stats();
    let report = match session.optimize(&oreq) {
        Ok(r) => r,
        Err(OptError::Request(msg)) => {
            return error_response(400, format!("invalid optimize request: {msg}"))
        }
        Err(e @ OptError::NonFinite { .. }) => {
            return error_response(500, format!("model `{}`: {e}", session.program().name))
        }
        Err(e) => return error_response(422, render_chain_inline(&e)),
    };
    let elab_after = session.elab_stats();
    spans.set_elab(
        elab_after.hits.saturating_sub(elab_before.hits),
        elab_after.misses.saturating_sub(elab_before.misses),
    );
    spans.mark(Phase::Evaluate);
    let frontier: Vec<Json> = report
        .frontier
        .iter()
        .map(|p| {
            let mut row = vec![
                ("nodes".to_string(), Json::from(p.sp.nodes)),
                ("cpus".to_string(), Json::from(p.sp.cpus_per_node)),
                ("processes".to_string(), Json::from(p.sp.processes)),
                ("cost".to_string(), Json::from(p.cost)),
                ("time".to_string(), Json::from(p.time)),
                ("speedup".to_string(), Json::from(p.speedup)),
            ];
            if let Some(v) = p.verified_time {
                row.push(("verified_time".to_string(), Json::from(v)));
            }
            Json::Object(row)
        })
        .collect();
    let best = match report.best {
        Some(i) => Json::from(i),
        None => Json::Null,
    };
    let baseline = match &report.baseline {
        Some((sp, time)) => Json::object([("sp", sp_json(*sp)), ("time", Json::from(*time))]),
        None => Json::Null,
    };
    let encoded = Json::object([
        ("model", Json::from(session.program().name.as_str())),
        ("backend", Json::from(report.backend.to_string())),
        ("objective", Json::from(report.objective.to_string())),
        ("frontier", Json::Array(frontier)),
        ("best", best),
        ("baseline", baseline),
        (
            "search",
            Json::object([
                ("oracle_evals", Json::from(report.oracle_evals)),
                ("grid_size", Json::from(report.grid_size)),
                ("cells_skipped", Json::from(report.cells_skipped)),
                ("cells_refined", Json::from(report.cells_refined)),
                ("verifier_evals", Json::from(report.verifier_evals)),
            ]),
        ),
        ("session", Json::object([("reused", Json::from(reused))])),
        ("elab", elab_json(&session)),
    ])
    .encode();
    spans.mark(Phase::Encode);
    Response::json(200, encoded)
}

fn handle_models() -> Response {
    let items: Vec<Json> = demo_models()
        .into_iter()
        .map(|(name, description)| {
            Json::object([
                ("name", Json::from(name)),
                ("description", Json::from(description)),
            ])
        })
        .collect();
    Response::json(200, Json::object([("models", Json::Array(items))]).encode())
}

fn handle_metrics(state: &AppState, req: &Request) -> Response {
    match req.query_param("format") {
        Some("prometheus") => return Response::prometheus(render_prometheus(state)),
        None | Some("json") => {}
        Some(other) => {
            return error_response(
                400,
                format!("unknown metrics format `{other}`; use `json` or `prometheus`"),
            )
        }
    }
    let pool = state.pool.stats();
    let elab = state.pool.elab_stats();
    let mut members = vec![
        ("endpoints".to_string(), state.metrics.to_json()),
        ("phases".to_string(), state.spans.phases_json()),
        (
            "journal".to_string(),
            Json::object([("recorded", Json::from(state.spans.recorded()))]),
        ),
        (
            "session_pool".to_string(),
            Json::object([
                ("size", Json::from(pool.size)),
                ("compiles", Json::from(pool.compiles)),
                ("reuses", Json::from(pool.reuses)),
                ("bypasses", Json::from(pool.bypasses)),
                ("evictions", Json::from(state.pool.evictions())),
            ]),
        ),
        (
            "elab".to_string(),
            Json::object([
                ("hits", Json::from(elab.hits)),
                ("misses", Json::from(elab.misses)),
                ("bypasses", Json::from(elab.bypasses)),
            ]),
        ),
    ];
    // The `store` section exists exactly when the server runs with a
    // persistent artifact store (`prophet serve --store DIR`).
    if let Some(store) = state.pool.store_stats() {
        members.push((
            "store".to_string(),
            Json::object([
                ("disk_hits", Json::from(store.disk_hits)),
                ("disk_misses", Json::from(store.disk_misses)),
                ("writes", Json::from(store.writes)),
                ("write_errors", Json::from(store.write_errors)),
                ("evictions", Json::from(store.evictions)),
            ]),
        ));
    }
    // Lifetime counters: boot-time checkpoint baseline + since-boot.
    // Always present — without a store the baseline is empty and the
    // values coincide with the since-boot `endpoints` section.
    members.push((
        "lifetime".to_string(),
        Json::object([
            (
                "checkpoints",
                Json::from(state.checkpoints.load(std::sync::atomic::Ordering::Relaxed)),
            ),
            (
                "counters",
                Json::Object(
                    state
                        .lifetime_counters()
                        .into_iter()
                        .map(|(name, value)| (name, Json::from(value)))
                        .collect(),
                ),
            ),
        ]),
    ));
    Response::json(200, Json::Object(members).encode())
}

fn handle_requests(state: &AppState) -> Response {
    Response::json(200, state.spans.journal_json().encode())
}

/// Require the operator bearer token (the `/v1/shutdown` one) on a
/// mutation endpoint. `None` token leaves the endpoint open, matching
/// shutdown's single-operator dev default.
fn operator_guard(state: &AppState, req: &Request, what: &str) -> Option<Response> {
    if let Some(expected) = &state.shutdown_token {
        if !bearer_authorized(req, expected) {
            return Some(error_response(
                401,
                format!("{what} requires a valid bearer token"),
            ));
        }
    }
    None
}

/// `POST /v1/warm`: prime the pool for a model/MCF without answering a
/// prediction. Same body shape as `/v1/check`; the checkout goes
/// store-first, so under a shared store a warm is a disk hit, not a
/// recompile. The router drives this during rebalance handoff.
fn handle_warm(state: &AppState, req: &Request, spans: &mut SpanSet) -> Response {
    if let Some(denied) = operator_guard(state, req, "warm") {
        return denied;
    }
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(r) => return r,
    };
    spans.mark(Phase::Parse);
    let (session, reused) = match resolve_session(state, &body, spans) {
        Ok(pair) => pair,
        Err(r) => return r,
    };
    let key = crate::pool::PoolKey::of(session.model(), session.mcf());
    let encoded = Json::object([
        ("ok", Json::from(true)),
        ("reused", Json::from(reused)),
        (
            "key",
            Json::object([
                ("model", Json::from(format!("{:016x}", key.model))),
                ("mcf", Json::from(format!("{:016x}", key.mcf))),
            ]),
        ),
    ])
    .encode();
    spans.mark(Phase::Encode);
    Response::json(200, encoded)
}

/// One `{model, mcf}` digest pair from the evict body, 16-hex each.
fn parse_evict_key(item: &Json) -> Result<crate::pool::PoolKey, Response> {
    let digest = |name: &str| -> Result<u64, Response> {
        let s = item.get(name).and_then(Json::as_str).ok_or_else(|| {
            error_response(400, format!("each key needs a `{name}` hex-digest string"))
        })?;
        u64::from_str_radix(s, 16)
            .map_err(|_| error_response(400, format!("bad `{name}` digest `{s}`: not 64-bit hex")))
    };
    Ok(crate::pool::PoolKey {
        model: digest("model")?,
        mcf: digest("mcf")?,
    })
}

/// `POST /v1/evict`: drop pooled sessions by digest key
/// (`{"keys": [{"model": "<16 hex>", "mcf": "<16 hex>"}, ...]}`). Keys
/// not in the pool count as requested but not evicted — eviction is
/// idempotent, so the router can re-drive a handoff safely.
fn handle_evict(state: &AppState, req: &Request) -> Response {
    if let Some(denied) = operator_guard(state, req, "evict") {
        return denied;
    }
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let Some(items) = body.get("keys").and_then(Json::as_array) else {
        return error_response(400, "missing `keys`: an array of {model, mcf} digest pairs");
    };
    let mut evicted = 0usize;
    for item in items {
        match parse_evict_key(item) {
            Ok(key) => {
                if state.pool.evict(key) {
                    evicted += 1;
                }
            }
            Err(r) => return r,
        }
    }
    Response::json(
        200,
        Json::object([
            ("requested", Json::from(items.len())),
            ("evicted", Json::from(evicted)),
        ])
        .encode(),
    )
}

/// The `?format=prometheus` rendering of everything `/v1/metrics`
/// reports: per-endpoint counters, latency histograms and quantile
/// gauges, per-phase histograms, pool/elab/store counters, and the
/// restart-surviving lifetime counters.
fn render_prometheus(state: &AppState) -> String {
    let mut e = Exposition::new();
    e.family("prophet_requests_total", "counter");
    for (i, name) in metrics::ENDPOINT_NAMES.iter().enumerate() {
        e.sample(
            "prophet_requests_total",
            &[("endpoint", name)],
            state.metrics.by_index(i).requests(),
        );
    }
    e.family("prophet_request_errors_total", "counter");
    for (i, name) in metrics::ENDPOINT_NAMES.iter().enumerate() {
        e.sample(
            "prophet_request_errors_total",
            &[("endpoint", name)],
            state.metrics.by_index(i).errors(),
        );
    }
    e.family("prophet_request_duration_seconds", "histogram");
    for (i, name) in metrics::ENDPOINT_NAMES.iter().enumerate() {
        e.histogram_snapshot(
            "prophet_request_duration_seconds",
            &[("endpoint", name)],
            &state.metrics.by_index(i).latency_snapshot(),
        );
    }
    e.family("prophet_request_duration_quantile_seconds", "gauge");
    for (i, name) in metrics::ENDPOINT_NAMES.iter().enumerate() {
        e.quantiles(
            "prophet_request_duration_quantile_seconds",
            &[("endpoint", name)],
            &state.metrics.by_index(i).latency_snapshot(),
        );
    }
    e.family("prophet_phase_duration_seconds", "histogram");
    for (i, name) in PHASE_NAMES.iter().enumerate() {
        e.histogram_snapshot(
            "prophet_phase_duration_seconds",
            &[("phase", name)],
            &state.spans.phase_snapshot(i),
        );
    }
    e.family("prophet_journal_recorded_total", "counter");
    e.sample(
        "prophet_journal_recorded_total",
        &[],
        state.spans.recorded(),
    );

    let pool = state.pool.stats();
    e.family("prophet_session_pool_size", "gauge");
    e.sample("prophet_session_pool_size", &[], pool.size as u64);
    for (name, value) in [
        ("prophet_session_pool_compiles_total", pool.compiles),
        ("prophet_session_pool_reuses_total", pool.reuses),
        ("prophet_session_pool_bypasses_total", pool.bypasses),
        (
            "prophet_session_pool_evictions_total",
            state.pool.evictions(),
        ),
    ] {
        e.family(name, "counter");
        e.sample(name, &[], value);
    }
    let elab = state.pool.elab_stats();
    for (name, value) in [
        ("prophet_elab_hits_total", elab.hits),
        ("prophet_elab_misses_total", elab.misses),
        ("prophet_elab_bypasses_total", elab.bypasses),
    ] {
        e.family(name, "counter");
        e.sample(name, &[], value);
    }
    if let Some(store) = state.pool.store_stats() {
        for (name, value) in [
            ("prophet_store_disk_hits_total", store.disk_hits),
            ("prophet_store_disk_misses_total", store.disk_misses),
            ("prophet_store_writes_total", store.writes),
            ("prophet_store_write_errors_total", store.write_errors),
            ("prophet_store_evictions_total", store.evictions),
        ] {
            e.family(name, "counter");
            e.sample(name, &[], value);
        }
    }
    e.family("prophet_metrics_checkpoints_total", "counter");
    e.sample(
        "prophet_metrics_checkpoints_total",
        &[],
        state.checkpoints.load(std::sync::atomic::Ordering::Relaxed),
    );
    e.family("prophet_requests_lifetime_total", "counter");
    for (name, value) in state.lifetime_counters() {
        // Checkpoint names are `endpoints.<name>.requests` /
        // `.errors`; expose the request counters, labelled by endpoint.
        if let Some(endpoint) = name
            .strip_prefix("endpoints.")
            .and_then(|rest| rest.strip_suffix(".requests"))
        {
            e.sample(
                "prophet_requests_lifetime_total",
                &[("endpoint", endpoint)],
                value,
            );
        }
    }
    e.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            query: String::new(),
            headers: Vec::new(),
            body: body.into(),
            keep_alive: true,
            trace: "t-test".into(),
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            query: String::new(),
            headers: Vec::new(),
            body: String::new(),
            keep_alive: true,
            trace: "t-test".into(),
        }
    }

    fn body_of(r: &Response) -> Json {
        json::parse(&r.body).expect("handler bodies are JSON")
    }

    #[test]
    fn estimate_by_name_then_reuse() {
        let state = AppState::default();
        let req = post("/v1/estimate", r#"{"model_name":"sample","nodes":2}"#);
        let (first, _) = handle(&state, &req);
        assert_eq!(first.status, 200, "{}", first.body);
        let first = body_of(&first);
        assert_eq!(first.get("model").unwrap().as_str(), Some("sample"));
        assert_eq!(
            first
                .get("session")
                .unwrap()
                .get("reused")
                .unwrap()
                .as_bool(),
            Some(false)
        );
        let (second, _) = handle(&state, &req);
        let second = body_of(&second);
        assert_eq!(
            second
                .get("session")
                .unwrap()
                .get("reused")
                .unwrap()
                .as_bool(),
            Some(true)
        );
        assert_eq!(
            second.get("predicted_time").unwrap().as_f64(),
            first.get("predicted_time").unwrap().as_f64()
        );
        // Same SP twice: the second evaluation is an elab-cache hit.
        assert_eq!(
            second.get("elab").unwrap().get("hits").unwrap().as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn estimate_inline_model_and_name_share_a_session() {
        let state = AppState::default();
        let xml = prophet_uml::xmi::model_to_xml(&models::sample_model());
        let by_xml = Json::object([("model", Json::from(xml))]).encode();
        let (r1, _) = handle(&state, &post("/v1/estimate", &by_xml));
        assert_eq!(r1.status, 200, "{}", r1.body);
        let (r2, _) = handle(&state, &post("/v1/estimate", r#"{"model_name":"sample"}"#));
        assert_eq!(
            body_of(&r2)
                .get("session")
                .unwrap()
                .get("reused")
                .unwrap()
                .as_bool(),
            Some(true),
            "inline XML and model_name must resolve to the same content key"
        );
    }

    #[test]
    fn estimate_rejects_bad_requests() {
        let state = AppState::default();
        for (body, status) in [
            ("not json", 400),
            ("[1,2]", 400),
            ("{}", 400),
            (r#"{"model_name":"nope"}"#, 404),
            (r#"{"model_name":"sample","model":"<x/>"}"#, 400),
            (r#"{"model_name":"sample","nodes":-1}"#, 400),
            (r#"{"model_name":"sample","backend":"quantum"}"#, 400),
            (r#"{"model_name":"sample","nodes":4,"processes":2}"#, 422),
            (r#"{"model":"<model><broken"}"#, 422),
        ] {
            let (r, _) = handle(&state, &post("/v1/estimate", body));
            assert_eq!(r.status, status, "{body} -> {}", r.body);
            assert!(body_of(&r).get("error").is_some(), "{body}");
        }
    }

    #[test]
    fn check_reports_diagnostics() {
        let (ok, _) = handle(
            &AppState::default(),
            &post("/v1/check", r#"{"model_name":"sample"}"#),
        );
        let ok = body_of(&ok);
        assert_eq!(ok.get("ok").unwrap().as_bool(), Some(true));

        // A model with an unparsable cost expression fails PP006.
        let xml = prophet_uml::xmi::model_to_xml(&models::sample_model())
            .replace("value=\"FA1()\"", "value=\"FA1() +\"");
        let req = Json::object([("model", Json::from(xml))]).encode();
        let (bad, _) = handle(&AppState::default(), &post("/v1/check", &req));
        assert_eq!(bad.status, 200, "{}", bad.body);
        let bad = body_of(&bad);
        assert_eq!(bad.get("ok").unwrap().as_bool(), Some(false));
        let diags = bad.get("diagnostics").unwrap().as_array().unwrap();
        assert!(
            diags
                .iter()
                .any(|d| d.get("rule").unwrap().as_str() == Some("PP006")),
            "{bad}"
        );
    }

    #[test]
    fn sweep_returns_a_speedup_table() {
        let state = AppState::default();
        let (r, _) = handle(
            &state,
            &post(
                "/v1/sweep",
                r#"{"model_name":"jacobi","nodes":[1,2,4],"backend":"analytic"}"#,
            ),
        );
        assert_eq!(r.status, 200, "{}", r.body);
        let body = body_of(&r);
        let points = body.get("points").unwrap().as_array().unwrap();
        assert_eq!(points.len(), 3);
        assert_eq!(body.get("failures").unwrap().as_f64(), Some(0.0));
        assert_eq!(points[0].get("speedup").unwrap().as_f64(), Some(1.0));
        assert!(points[2].get("speedup").unwrap().as_f64().unwrap() > 1.0);
        // A zero node count is a client error, rejected up front by
        // name — not a 200 with a per-point failure row.
        let (r, _) = handle(
            &state,
            &post("/v1/sweep", r#"{"model_name":"jacobi","nodes":[0,1]}"#),
        );
        assert_eq!(r.status, 400, "{}", r.body);
        let err = body_of(&r)
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        assert!(err.contains("bad count `0` in `nodes`"), "{err}");
        // Repeated node counts collapse to one point each.
        let (r, _) = handle(
            &state,
            &post(
                "/v1/sweep",
                r#"{"model_name":"jacobi","nodes":[2,2,4,2],"backend":"analytic"}"#,
            ),
        );
        assert_eq!(r.status, 200, "{}", r.body);
        let body = body_of(&r);
        assert_eq!(body.get("points").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn optimize_returns_a_frontier_and_reuses_warm_sessions() {
        let state = AppState::default();
        // Warm the pool the way a client would: one estimate first.
        let (r, _) = handle(
            &state,
            &post(
                "/v1/estimate",
                r#"{"model_name":"jacobi","backend":"analytic"}"#,
            ),
        );
        assert_eq!(r.status, 200, "{}", r.body);
        let compiles_before = state.pool.stats().compiles;

        // A dense nodes axis: wide cells give the incumbent something
        // to dominate, so the search visibly prunes.
        let nodes: Vec<Json> = (1..=32usize).map(Json::from).collect();
        let oreq = Json::object([
            ("model_name", Json::from("jacobi")),
            ("nodes", Json::Array(nodes)),
            (
                "cpus",
                Json::Array(vec![
                    Json::from(1usize),
                    Json::from(2usize),
                    Json::from(4usize),
                ]),
            ),
            ("deadline", Json::from(0.02)),
        ])
        .encode();
        let (r, _) = handle(&state, &post("/v1/optimize", &oreq));
        assert_eq!(r.status, 200, "{}", r.body);
        let body = body_of(&r);
        assert_eq!(body.get("backend").unwrap().as_str(), Some("analytic"));
        assert_eq!(body.get("objective").unwrap().as_str(), Some("min_time"));
        let frontier = body.get("frontier").unwrap().as_array().unwrap();
        assert!(!frontier.is_empty(), "{body}");
        // Frontier shape: cost strictly ascending, time strictly descending.
        let costs: Vec<f64> = frontier
            .iter()
            .map(|p| p.get("cost").unwrap().as_f64().unwrap())
            .collect();
        let times: Vec<f64> = frontier
            .iter()
            .map(|p| p.get("time").unwrap().as_f64().unwrap())
            .collect();
        assert!(costs.windows(2).all(|w| w[0] < w[1]), "{costs:?}");
        assert!(times.windows(2).all(|w| w[0] > w[1]), "{times:?}");
        let best = body.get("best").unwrap().as_usize().unwrap();
        assert!(best < frontier.len());
        let search = body.get("search").unwrap();
        let evals = search.get("oracle_evals").unwrap().as_f64().unwrap();
        let grid = search.get("grid_size").unwrap().as_f64().unwrap();
        assert_eq!(grid, 96.0);
        assert!(evals < grid, "lazy search must not evaluate the full grid");
        // Warm-model optimize: the session came from the pool, with
        // zero additional compiles.
        assert_eq!(
            body.get("session")
                .unwrap()
                .get("reused")
                .unwrap()
                .as_bool(),
            Some(true)
        );
        assert_eq!(state.pool.stats().compiles, compiles_before);
    }

    #[test]
    fn optimize_rejects_bad_requests() {
        let state = AppState::default();
        for (body, needle) in [
            (
                r#"{"model_name":"jacobi","nodes":[0,2]}"#,
                "bad count `0` in `nodes`",
            ),
            (
                r#"{"model_name":"jacobi","cpus":[]}"#,
                "`cpus` must be a non-empty array",
            ),
            (
                r#"{"model_name":"jacobi","nodes":[1.5]}"#,
                "must be an integer",
            ),
            (
                r#"{"model_name":"jacobi","objective":"fastest"}"#,
                "unknown objective",
            ),
            (
                r#"{"model_name":"jacobi","verify":"twice"}"#,
                "unknown verify mode",
            ),
            (r#"{"model_name":"jacobi","margin":1.5}"#, "margin"),
            (r#"{"model_name":"jacobi","stride":0}"#, "stride"),
            (
                r#"{"model_name":"jacobi","deadline":"soon"}"#,
                "`deadline` must be a number",
            ),
            (r#"{"model_name":"jacobi","deadline":-1}"#, "deadline"),
        ] {
            let (r, _) = handle(&state, &post("/v1/optimize", body));
            assert_eq!(r.status, 400, "{body} -> {}", r.body);
            let err = body_of(&r)
                .get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string();
            assert!(err.contains(needle), "{body} -> {err}");
        }
        // Bad requests never reach compilation.
        assert_eq!(state.pool.stats().compiles, 0);
    }

    #[test]
    fn optimize_constraints_and_verification() {
        let state = AppState::default();
        let (r, _) = handle(
            &state,
            &post(
                "/v1/optimize",
                r#"{"model_name":"jacobi","nodes":[1,2,4,8],"cpus":[1,2],"objective":"min_cost","max_cost":6,"verify":"sim"}"#,
            ),
        );
        assert_eq!(r.status, 200, "{}", r.body);
        let body = body_of(&r);
        let frontier = body.get("frontier").unwrap().as_array().unwrap();
        assert!(!frontier.is_empty(), "{body}");
        for p in frontier {
            assert!(p.get("cost").unwrap().as_f64().unwrap() <= 6.0, "{p}");
            let sim = p.get("verified_time").unwrap().as_f64().unwrap();
            let analytic = p.get("time").unwrap().as_f64().unwrap();
            assert!(
                ((sim - analytic) / analytic).abs() <= 1e-9,
                "verified {sim} vs oracle {analytic}"
            );
        }
        // min_cost: best is the cheapest frontier point, index 0.
        assert_eq!(body.get("best").unwrap().as_usize(), Some(0));
        let verifs = body
            .get("search")
            .unwrap()
            .get("verifier_evals")
            .unwrap()
            .as_usize()
            .unwrap();
        assert_eq!(verifs, frontier.len());
    }

    /// The sample model with two costs rewritten to `1e308` each: every
    /// individual op time passes the flattener's finiteness guard, but
    /// the analytic backend's running sum overflows to `inf` — the
    /// evaluator reports success with a non-finite prediction.
    fn overflowing_model_xml() -> String {
        prophet_uml::xmi::model_to_xml(&models::sample_model())
            .replace("0.04 + 0.01 * P", "1e308")
            .replace("body=\"0.5\"", "body=\"1e308\"")
    }

    #[test]
    fn non_finite_predictions_are_a_500_not_a_null() {
        let state = AppState::default();
        let body = Json::object([
            ("model", Json::from(overflowing_model_xml())),
            ("backend", Json::from("analytic")),
        ])
        .encode();
        let (r, _) = handle(&state, &post("/v1/estimate", &body));
        assert_eq!(r.status, 500, "{}", r.body);
        let err = body_of(&r)
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        assert!(err.contains("non-finite"), "{err}");
        assert!(err.contains("sample"), "names the model: {err}");
        assert!(err.contains("nodes=1"), "names the SP point: {err}");

        let sweep = Json::object([
            ("model", Json::from(overflowing_model_xml())),
            ("backend", Json::from("analytic")),
            (
                "nodes",
                Json::Array(vec![Json::from(1usize), Json::from(2usize)]),
            ),
        ])
        .encode();
        let (r, _) = handle(&state, &post("/v1/sweep", &sweep));
        assert_eq!(r.status, 500, "{}", r.body);
        assert!(body_of(&r)
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("non-finite"));

        let (r, _) = handle(&state, &post("/v1/optimize", &body));
        assert_eq!(r.status, 500, "{}", r.body);
        let err = body_of(&r)
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        assert!(err.contains("non-finite"), "{err}");
    }

    #[test]
    fn models_metrics_and_routing() {
        let state = AppState::default();
        let (r, _) = handle(&state, &get("/v1/models"));
        let names: Vec<String> = body_of(&r)
            .get("models")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|m| m.get("name").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(names.len(), 10);
        assert!(names.contains(&"jacobi".to_string()));
        assert!(names.contains(&"halo_ring".to_string()));
        // Every listed model actually resolves and compiles.
        for name in &names {
            Session::new(demo_model(name).unwrap()).unwrap();
        }

        let (r, _) = handle(&state, &get("/v1/metrics"));
        let metrics = body_of(&r);
        assert!(metrics.get("session_pool").is_some());
        assert!(metrics.get("elab").is_some());

        let (r, _) = handle(&state, &get("/nope"));
        assert_eq!(r.status, 404);
        let (r, _) = handle(&state, &get("/v1/estimate"));
        assert_eq!(r.status, 405);
        let (r, _) = handle(&state, &post("/v1/requests", ""));
        assert_eq!(r.status, 405);
        let (r, shutdown) = handle(&state, &post("/v1/shutdown", ""));
        assert_eq!(r.status, 200);
        assert!(shutdown);
    }

    fn post_auth(path: &str, body: &str, token: &str) -> Request {
        let mut req = post(path, body);
        req.headers
            .push(("authorization".into(), format!("Bearer {token}")));
        req
    }

    #[test]
    fn warm_and_evict_manage_the_pool_behind_the_operator_token() {
        let state = AppState {
            shutdown_token: Some("sekrit".into()),
            ..AppState::default()
        };

        // Both mutations share the shutdown token guard.
        let (r, _) = handle(&state, &post("/v1/warm", r#"{"model_name":"sample"}"#));
        assert_eq!(r.status, 401);
        let (r, _) = handle(&state, &post("/v1/evict", r#"{"keys":[]}"#));
        assert_eq!(r.status, 401);
        let (r, _) = handle(&state, &get("/v1/warm"));
        assert_eq!(r.status, 405);

        // A cold warm compiles into the pool; a second one is a reuse.
        let warm = post_auth("/v1/warm", r#"{"model_name":"sample"}"#, "sekrit");
        let (r, _) = handle(&state, &warm);
        assert_eq!(r.status, 200, "{}", r.body);
        let first = body_of(&r);
        assert_eq!(first.get("reused").unwrap().as_bool(), Some(false));
        let key = first.get("key").unwrap();
        let model_hex = key.get("model").unwrap().as_str().unwrap().to_string();
        let mcf_hex = key.get("mcf").unwrap().as_str().unwrap().to_string();
        assert_eq!(model_hex.len(), 16);
        let (r, _) = handle(&state, &warm);
        assert_eq!(body_of(&r).get("reused").unwrap().as_bool(), Some(true));
        assert_eq!(state.pool.stats().size, 1);

        // Evict by the digest pair the warm reported; unknown keys are
        // counted as requested but not evicted, and re-evicting is a
        // no-op — the handoff driver can replay safely.
        let body = format!(
            r#"{{"keys":[{{"model":"{model_hex}","mcf":"{mcf_hex}"}},{{"model":"dead","mcf":"beef"}}]}}"#
        );
        let (r, _) = handle(&state, &post_auth("/v1/evict", &body, "sekrit"));
        assert_eq!(r.status, 200, "{}", r.body);
        let evicted = body_of(&r);
        assert_eq!(evicted.get("requested").unwrap().as_f64(), Some(2.0));
        assert_eq!(evicted.get("evicted").unwrap().as_f64(), Some(1.0));
        assert_eq!(state.pool.stats().size, 0);
        let (r, _) = handle(&state, &post_auth("/v1/evict", &body, "sekrit"));
        assert_eq!(body_of(&r).get("evicted").unwrap().as_f64(), Some(0.0));

        // Malformed bodies are 400s, not panics.
        let (r, _) = handle(&state, &post_auth("/v1/evict", r#"{}"#, "sekrit"));
        assert_eq!(r.status, 400);
        let bad = r#"{"keys":[{"model":"nothex!","mcf":"0"}]}"#;
        let (r, _) = handle(&state, &post_auth("/v1/evict", bad, "sekrit"));
        assert_eq!(r.status, 400);

        // The eviction shows up in both metrics renderings.
        let (r, _) = handle(&state, &get("/v1/metrics"));
        let pool = body_of(&r);
        let pool = pool.get("session_pool").unwrap();
        assert_eq!(pool.get("evictions").unwrap().as_f64(), Some(1.0));
        let mut prom = get("/v1/metrics");
        prom.query = "format=prometheus".into();
        let (r, _) = handle(&state, &prom);
        assert!(r.body.contains("prophet_session_pool_evictions_total 1"));
    }

    #[test]
    fn journal_records_every_request_with_phase_spans() {
        let state = AppState::default();
        let mut req = post("/v1/estimate", r#"{"model_name":"sample","nodes":2}"#);
        req.trace = "t-journal-1".into();
        let (r, _) = handle(&state, &req);
        assert_eq!(r.status, 200, "{}", r.body);

        let (r, _) = handle(&state, &get("/v1/requests"));
        assert_eq!(r.status, 200);
        let journal = body_of(&r);
        assert_eq!(journal.get("recorded").unwrap().as_f64(), Some(1.0));
        let rows = journal.get("requests").unwrap().as_array().unwrap();
        let row = &rows[0];
        assert_eq!(row.get("trace_id").unwrap().as_str(), Some("t-journal-1"));
        assert_eq!(row.get("endpoint").unwrap().as_str(), Some("estimate"));
        assert_eq!(row.get("status").unwrap().as_f64(), Some(200.0));
        assert!(row.get("total_us").unwrap().as_f64().unwrap() > 0.0);
        let phases = row.get("phases").unwrap();
        for name in PHASE_NAMES {
            assert!(phases.get(name).is_some(), "{name}");
        }
        // A cold estimate compiled: the compile span is measurable.
        assert!(
            phases.get("compile").unwrap().as_f64().unwrap() > 0.0,
            "{phases}"
        );
        // One SP point, first evaluation: one elab miss, zero hits.
        let elab = row.get("elab").unwrap();
        assert_eq!(elab.get("misses").unwrap().as_f64(), Some(1.0));
        assert_eq!(elab.get("hits").unwrap().as_f64(), Some(0.0));

        // Errors are journaled too, under their own trace and status.
        let mut bad = post("/v1/estimate", "not json");
        bad.trace = "t-journal-2".into();
        handle(&state, &bad);
        let (r, _) = handle(&state, &get("/v1/requests"));
        let rows = body_of(&r);
        let rows = rows.get("requests").unwrap().as_array().unwrap();
        // Newest first: the 400, then the journal GET, then the 200.
        assert_eq!(rows[0].get("status").unwrap().as_f64(), Some(400.0));
        assert_eq!(
            rows[0].get("trace_id").unwrap().as_str(),
            Some("t-journal-2")
        );
        assert_eq!(rows[1].get("endpoint").unwrap().as_str(), Some("requests"));

        // The aggregated phase histograms saw the compile too.
        let (r, _) = handle(&state, &get("/v1/metrics"));
        let metrics = body_of(&r);
        let compile = metrics.get("phases").unwrap().get("compile").unwrap();
        assert!(compile.get("observations").unwrap().as_f64().unwrap() >= 1.0);
        assert!(metrics.get("journal").unwrap().get("recorded").is_some());
    }

    #[test]
    fn lifetime_counters_merge_the_boot_baseline() {
        let state = AppState {
            baseline: vec![
                ("endpoints.estimate.requests".to_string(), 5),
                ("endpoints.estimate.errors".to_string(), 2),
            ],
            ..AppState::default()
        };
        // Live traffic is recorded by the server layer; simulate one
        // since-boot estimate.
        state
            .metrics
            .endpoint("POST", "/v1/estimate")
            .record(std::time::Duration::from_micros(40), false);
        let (r, _) = handle(&state, &get("/v1/metrics"));
        let body = body_of(&r);
        let lifetime = body.get("lifetime").unwrap();
        assert_eq!(lifetime.get("checkpoints").unwrap().as_f64(), Some(0.0));
        let counters = lifetime.get("counters").unwrap();
        assert_eq!(
            counters
                .get("endpoints.estimate.requests")
                .unwrap()
                .as_f64(),
            Some(6.0),
            "baseline 5 + live 1"
        );
        assert_eq!(
            counters.get("endpoints.estimate.errors").unwrap().as_f64(),
            Some(2.0)
        );
        // The since-boot section stays since-boot.
        let est = body.get("endpoints").unwrap().get("estimate").unwrap();
        assert_eq!(est.get("requests").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn metrics_render_as_prometheus_text() {
        let state = AppState::default();
        let (r, _) = handle(&state, &post("/v1/estimate", r#"{"model_name":"sample"}"#));
        assert_eq!(r.status, 200, "{}", r.body);
        state
            .metrics
            .endpoint("POST", "/v1/estimate")
            .record(std::time::Duration::from_micros(40), false);

        let mut req = get("/v1/metrics");
        req.query = "format=prometheus".into();
        let (r, _) = handle(&state, &req);
        assert_eq!(r.status, 200);
        assert_eq!(r.content_type, "text/plain; version=0.0.4");
        for needle in [
            "# TYPE prophet_requests_total counter",
            "prophet_requests_total{endpoint=\"estimate\"} 1",
            "# TYPE prophet_request_duration_seconds histogram",
            "prophet_request_duration_seconds_bucket{endpoint=\"estimate\",le=\"+Inf\"} 1",
            "# TYPE prophet_phase_duration_seconds histogram",
            "prophet_phase_duration_seconds_bucket{phase=\"compile\"",
            "prophet_requests_lifetime_total{endpoint=\"estimate\"} 1",
            "# TYPE prophet_session_pool_compiles_total counter",
            "prophet_session_pool_compiles_total 1",
        ] {
            assert!(
                r.body.contains(needle),
                "missing `{needle}` in:\n{}",
                r.body
            );
        }

        // `?format=json` is the default spelling; anything else is 400.
        let mut req = get("/v1/metrics");
        req.query = "format=json".into();
        let (r, _) = handle(&state, &req);
        assert_eq!(r.status, 200);
        let mut req = get("/v1/metrics");
        req.query = "format=xml".into();
        let (r, _) = handle(&state, &req);
        assert_eq!(r.status, 400, "{}", r.body);
        assert!(body_of(&r)
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("unknown metrics format"));
    }
}
