//! Property-based tests over randomly generated models: XMI roundtrip
//! fidelity and traverser invariants.

use prophet_uml::xmi::{model_from_xml, model_to_xml};
use prophet_uml::{
    ContentHandler, ExplicitStackNavigator, Model, ModelBuilder, RecursiveWalk, Traverser,
    VisitPhase,
};
use proptest::prelude::*;

/// Strategy: a random well-formed model — a main diagram with a chain of
/// actions interleaved with decisions (guard/else to a merge), plus an
/// optional composite with its own chain.
fn model_strategy() -> impl Strategy<Value = Model> {
    (
        2usize..20,                                  // chain length
        prop::collection::vec(any::<bool>(), 2..20), // decision pattern
        prop::option::of(1usize..6),                 // composite body length
        prop::collection::vec("[a-z]{1,6}", 0..4),   // extra globals
    )
        .prop_map(|(len, decisions, composite, globals)| {
            let mut b = ModelBuilder::new("gen");
            for (i, g) in globals.iter().enumerate() {
                // Unique names: prefix with index.
                b.global(
                    &format!("g{i}_{g}"),
                    prophet_uml::VarType::Double,
                    Some("1"),
                );
            }
            b.function("F", &["x"], "0.001 * x + 0.0001");
            let main = b.main_diagram();
            let init = b.initial(main, "start");
            let mut prev = init;
            for k in 0..len {
                if decisions.get(k).copied().unwrap_or(false) {
                    let d = b.decision(main, &format!("d{k}"));
                    let x = b.action(main, &format!("X{k}"), "F(1)");
                    let y = b.action(main, &format!("Y{k}"), "F(2)");
                    let m = b.merge(main, &format!("m{k}"));
                    b.flow(main, prev, d);
                    b.guarded_flow(main, d, x, "P > 2");
                    b.guarded_flow(main, d, y, "else");
                    b.flow(main, x, m);
                    b.flow(main, y, m);
                    prev = m;
                } else {
                    let a = b.action(main, &format!("A{k}"), &format!("F({k})"));
                    b.flow(main, prev, a);
                    prev = a;
                }
            }
            if let Some(body_len) = composite {
                let sub = b.diagram("SubD");
                let comp = b.call_activity(main, "Comp", sub);
                b.flow(main, prev, comp);
                prev = comp;
                let mut sprev = None;
                for k in 0..body_len {
                    let a = b.action(sub, &format!("S{k}"), "F(1)");
                    if let Some(p) = sprev {
                        b.flow(sub, p, a);
                    }
                    sprev = Some(a);
                }
            }
            let f = b.final_node(main, "end");
            b.flow(main, prev, f);
            b.build()
        })
}

#[derive(Default)]
struct Collector {
    enters: Vec<String>,
    leaves: Vec<String>,
}

impl ContentHandler for Collector {
    fn visit_element(&mut self, model: &Model, e: prophet_uml::ElementId, phase: VisitPhase) {
        let name = model.element(e).name.clone();
        match phase {
            VisitPhase::Enter => self.enters.push(name),
            VisitPhase::Leave => self.leaves.push(name),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn xmi_roundtrip_preserves_structure(model in model_strategy()) {
        let xml = model_to_xml(&model);
        let back = model_from_xml(&xml).unwrap();
        prop_assert_eq!(back.element_count(), model.element_count());
        prop_assert_eq!(back.diagrams.len(), model.diagrams.len());
        prop_assert_eq!(&back.variables, &model.variables);
        prop_assert_eq!(&back.functions, &model.functions);
        for el in model.elements() {
            let other = back.element_by_name(&el.name).expect("element survives");
            prop_assert_eq!(other.kind.tag(), el.kind.tag());
            prop_assert_eq!(
                other.stereotype.as_ref().map(|s| &s.values),
                el.stereotype.as_ref().map(|s| &s.values)
            );
        }
        // Edge multisets per diagram (by endpoint names + guard).
        for (d1, d2) in model.diagrams.iter().zip(&back.diagrams) {
            let key = |m: &Model, d: &prophet_uml::Diagram| {
                let mut v: Vec<(String, String, Option<String>)> = d
                    .edges
                    .iter()
                    .map(|e| {
                        (
                            m.element(e.from).name.clone(),
                            m.element(e.to).name.clone(),
                            e.guard.clone(),
                        )
                    })
                    .collect();
                v.sort();
                v
            };
            prop_assert_eq!(key(&model, d1), key(&back, d2));
        }
        // Second serialization is a fixpoint.
        let xml2 = model_to_xml(&back);
        let back2 = model_from_xml(&xml2).unwrap();
        prop_assert_eq!(model_to_xml(&back2), xml2);
    }

    #[test]
    fn navigators_always_agree(model in model_strategy()) {
        let run = |nav: &mut dyn prophet_uml::Navigator| {
            let mut c = Collector::default();
            Traverser::new().traverse(&model, nav, &mut c);
            (c.enters, c.leaves)
        };
        let a = run(&mut ExplicitStackNavigator::new(model.main_diagram()));
        let b = run(&mut RecursiveWalk::new(&model, model.main_diagram()));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn every_element_entered_exactly_once(model in model_strategy()) {
        let mut c = Collector::default();
        let mut nav = ExplicitStackNavigator::new(model.main_diagram());
        Traverser::new().traverse(&model, &mut nav, &mut c);
        // Every element of every diagram reachable from main appears once.
        prop_assert_eq!(c.enters.len(), c.leaves.len());
        let mut sorted = c.enters.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), c.enters.len(), "duplicate visit");
    }
}
