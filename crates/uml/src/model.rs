//! The arena-based model tree: [`Model`], [`Diagram`], [`Element`],
//! [`Edge`], variables and function declarations.
//!
//! The paper: "The UML model, with its diagrams and modeling elements,
//! forms a tree data structure. During the model transformation process
//! the tree is programmatically traversed…" — we store elements in a
//! `Vec` arena indexed by [`ElementId`] (cache-friendly, no `Rc` cycles)
//! and diagrams as node/edge lists over those ids.

use crate::profile::{performance_profile, Profile, StereotypeApplication, TagValue};

/// Index of an element in the model arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElementId(pub usize);

/// Index of a diagram in the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DiagramId(pub usize);

/// The UML activity-diagram node kinds supported by the profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Initial node (filled circle).
    Initial,
    /// Activity final node (bullseye).
    ActivityFinal,
    /// Flow final node.
    FlowFinal,
    /// ActionNode — typically stereotyped `<<action+>>` or an MPI block.
    Action,
    /// Composite `<<activity+>>` whose content is another diagram.
    CallActivity(DiagramId),
    /// Decision node (diamond) — outgoing edges carry guards.
    Decision,
    /// Merge node (diamond joining alternative flows).
    Merge,
    /// Fork bar (parallel split).
    Fork,
    /// Join bar (parallel join).
    Join,
}

impl NodeKind {
    /// Short lowercase name used in XML and diagnostics.
    pub fn tag(&self) -> &'static str {
        match self {
            NodeKind::Initial => "initial",
            NodeKind::ActivityFinal => "final",
            NodeKind::FlowFinal => "flowfinal",
            NodeKind::Action => "action",
            NodeKind::CallActivity(_) => "activity",
            NodeKind::Decision => "decision",
            NodeKind::Merge => "merge",
            NodeKind::Fork => "fork",
            NodeKind::Join => "join",
        }
    }
}

/// A modeling element (node of an activity diagram).
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// Arena id.
    pub id: ElementId,
    /// Element name (`A1`, `Kernel6`, `SA`, …).
    pub name: String,
    /// Node kind.
    pub kind: NodeKind,
    /// Owning diagram.
    pub diagram: DiagramId,
    /// Applied stereotype with tagged values, if any.
    pub stereotype: Option<StereotypeApplication>,
}

impl Element {
    /// The stereotype name if one is applied.
    pub fn stereotype_name(&self) -> Option<&str> {
        self.stereotype.as_ref().map(|s| s.stereotype.as_str())
    }

    /// True if this element is *performance relevant* per the Figure-5
    /// algorithm (lines 1–8): selected by stereotype name.
    pub fn is_performance_element(&self) -> bool {
        matches!(
            self.stereotype_name(),
            Some(
                "action+"
                    | "activity+"
                    | "loop+"
                    | "parallel+"
                    | "critical+"
                    | "send"
                    | "recv"
                    | "broadcast"
                    | "reduce"
                    | "allreduce"
                    | "scatter"
                    | "gather"
                    | "barrier"
            )
        )
    }

    /// A tagged value by name.
    pub fn tag(&self, name: &str) -> Option<&TagValue> {
        self.stereotype.as_ref().and_then(|s| s.get(name))
    }

    /// The cost-function expression associated with this element (tag
    /// `cost`), e.g. `FA1()`.
    pub fn cost_expr(&self) -> Option<&str> {
        match self.tag("cost") {
            Some(TagValue::Expr(s)) | Some(TagValue::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// The associated code fragment (tag `code`), Figure 7(b).
    pub fn code_fragment(&self) -> Option<&str> {
        match self.tag("code") {
            Some(TagValue::Code(s)) | Some(TagValue::Str(s)) => Some(s),
            _ => None,
        }
    }
}

/// A guarded control-flow edge.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// Source element.
    pub from: ElementId,
    /// Target element.
    pub to: ElementId,
    /// Guard expression for edges out of decision nodes. The literal
    /// `else` marks the default branch.
    pub guard: Option<String>,
}

/// An activity diagram: an ordered set of nodes plus control-flow edges.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagram {
    /// Diagram id within the model.
    pub id: DiagramId,
    /// Diagram name (`main`, `SA`, …).
    pub name: String,
    /// Node ids in creation order (the paper's traversal visits elements
    /// in diagram order).
    pub nodes: Vec<ElementId>,
    /// Control-flow edges.
    pub edges: Vec<Edge>,
}

impl Diagram {
    /// Outgoing edges of `node` in insertion order.
    pub fn outgoing<'a>(&'a self, node: ElementId) -> impl Iterator<Item = &'a Edge> + 'a {
        self.edges.iter().filter(move |e| e.from == node)
    }

    /// Incoming edges of `node`.
    pub fn incoming<'a>(&'a self, node: ElementId) -> impl Iterator<Item = &'a Edge> + 'a {
        self.edges.iter().filter(move |e| e.to == node)
    }
}

/// Variable type in the model (the paper's globals `GV`, `P` are ints).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarType {
    /// C `int`.
    Int,
    /// C `double`.
    Double,
    /// C `bool`.
    Bool,
}

impl VarType {
    /// C++ spelling.
    pub fn cpp(&self) -> &'static str {
        match self {
            VarType::Int => "int",
            VarType::Double => "double",
            VarType::Bool => "bool",
        }
    }
}

/// Whether a variable is global to the model or local to the program body
/// (Figure 5 distinguishes the two when generating C++).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarScope {
    /// Emitted before the cost functions (Figure 8(a) lines 24–25).
    Global,
    /// Emitted inside the program body (Figure 5 lines 20–23).
    Local,
}

/// A model variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Variable {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub var_type: VarType,
    /// Scope.
    pub scope: VarScope,
    /// Optional initializer expression text.
    pub init: Option<String>,
}

/// A model-defined cost function (Figure 8(a) lines 31–54).
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDecl {
    /// Function name (`FA1`).
    pub name: String,
    /// Parameter names (`pid`, …).
    pub params: Vec<String>,
    /// Body expression source text.
    pub body: String,
}

/// A complete performance model: the tree of diagrams and elements plus
/// variables, cost functions, and the applied profile.
#[derive(Debug, Clone)]
pub struct Model {
    /// Model name.
    pub name: String,
    elements: Vec<Element>,
    /// Diagrams; index 0 is the main diagram.
    pub diagrams: Vec<Diagram>,
    /// Global and local variables.
    pub variables: Vec<Variable>,
    /// Cost functions defined in the model.
    pub functions: Vec<FunctionDecl>,
    /// The profile governing stereotype usage.
    pub profile: Profile,
}

impl Model {
    /// Empty model with a `main` diagram and the performance profile.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            elements: Vec::new(),
            diagrams: vec![Diagram {
                id: DiagramId(0),
                name: "main".into(),
                nodes: Vec::new(),
                edges: Vec::new(),
            }],
            variables: Vec::new(),
            functions: Vec::new(),
            profile: performance_profile(),
        }
    }

    /// The main diagram's id.
    pub fn main_diagram(&self) -> DiagramId {
        DiagramId(0)
    }

    /// Add a diagram; returns its id.
    pub fn add_diagram(&mut self, name: impl Into<String>) -> DiagramId {
        let id = DiagramId(self.diagrams.len());
        self.diagrams.push(Diagram {
            id,
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
        });
        id
    }

    /// Add an element to a diagram; returns its arena id.
    ///
    /// # Panics
    /// Panics if `diagram` does not exist (builder bug, not data error).
    pub fn add_element(
        &mut self,
        diagram: DiagramId,
        name: impl Into<String>,
        kind: NodeKind,
        stereotype: Option<StereotypeApplication>,
    ) -> ElementId {
        assert!(
            diagram.0 < self.diagrams.len(),
            "unknown diagram {diagram:?}"
        );
        let id = ElementId(self.elements.len());
        self.elements.push(Element {
            id,
            name: name.into(),
            kind,
            diagram,
            stereotype,
        });
        self.diagrams[diagram.0].nodes.push(id);
        id
    }

    /// Add a control-flow edge within a diagram.
    pub fn add_edge(
        &mut self,
        diagram: DiagramId,
        from: ElementId,
        to: ElementId,
        guard: Option<String>,
    ) {
        assert!(
            diagram.0 < self.diagrams.len(),
            "unknown diagram {diagram:?}"
        );
        self.diagrams[diagram.0]
            .edges
            .push(Edge { from, to, guard });
    }

    /// Element by id.
    pub fn element(&self, id: ElementId) -> &Element {
        &self.elements[id.0]
    }

    /// Mutable element by id.
    pub fn element_mut(&mut self, id: ElementId) -> &mut Element {
        &mut self.elements[id.0]
    }

    /// All elements in arena order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Number of elements across all diagrams.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Diagram by id.
    pub fn diagram(&self, id: DiagramId) -> &Diagram {
        &self.diagrams[id.0]
    }

    /// Find a diagram by name.
    pub fn diagram_by_name(&self, name: &str) -> Option<&Diagram> {
        self.diagrams.iter().find(|d| d.name == name)
    }

    /// Find an element by name (first match across diagrams).
    pub fn element_by_name(&self, name: &str) -> Option<&Element> {
        self.elements.iter().find(|e| e.name == name)
    }

    /// Declare a variable.
    pub fn add_variable(&mut self, v: Variable) {
        self.variables.push(v);
    }

    /// Declare a cost function.
    pub fn add_function(&mut self, f: FunctionDecl) {
        self.functions.push(f);
    }

    /// Global variables in declaration order.
    pub fn globals(&self) -> impl Iterator<Item = &Variable> {
        self.variables
            .iter()
            .filter(|v| v.scope == VarScope::Global)
    }

    /// Local variables in declaration order.
    pub fn locals(&self) -> impl Iterator<Item = &Variable> {
        self.variables.iter().filter(|v| v.scope == VarScope::Local)
    }

    /// Performance-relevant elements across all diagrams, in diagram-then-
    /// creation order — exactly the `perf_elements` set built by lines 1–8
    /// of the Figure-5 algorithm.
    pub fn performance_elements(&self) -> Vec<ElementId> {
        let mut out = Vec::new();
        for d in &self.diagrams {
            for &nid in &d.nodes {
                if self.element(nid).is_performance_element() {
                    out.push(nid);
                }
            }
        }
        out
    }

    /// The initial node of a diagram, if unique.
    pub fn initial_of(&self, diagram: DiagramId) -> Option<ElementId> {
        let mut found = None;
        for &nid in &self.diagrams[diagram.0].nodes {
            if self.element(nid).kind == NodeKind::Initial {
                if found.is_some() {
                    return None;
                }
                found = Some(nid);
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{StereotypeApplication, TagValue};

    fn action_plus(cost: &str) -> StereotypeApplication {
        StereotypeApplication::new("action+").with("cost", TagValue::Expr(cost.into()))
    }

    #[test]
    fn build_simple_model() {
        let mut m = Model::new("demo");
        let main = m.main_diagram();
        let init = m.add_element(main, "start", NodeKind::Initial, None);
        let a1 = m.add_element(main, "A1", NodeKind::Action, Some(action_plus("FA1()")));
        let fin = m.add_element(main, "end", NodeKind::ActivityFinal, None);
        m.add_edge(main, init, a1, None);
        m.add_edge(main, a1, fin, None);

        assert_eq!(m.element_count(), 3);
        assert_eq!(m.element(a1).cost_expr(), Some("FA1()"));
        assert_eq!(m.performance_elements(), vec![a1]);
        assert_eq!(m.initial_of(main), Some(init));
    }

    #[test]
    fn nested_diagram_via_call_activity() {
        let mut m = Model::new("nested");
        let main = m.main_diagram();
        let sub = m.add_diagram("SA");
        let sa = m.add_element(
            main,
            "SA",
            NodeKind::CallActivity(sub),
            Some(StereotypeApplication::new("activity+")),
        );
        let sa1 = m.add_element(sub, "SA1", NodeKind::Action, Some(action_plus("FSA1()")));
        assert_eq!(m.element(sa).diagram, main);
        assert_eq!(m.element(sa1).diagram, sub);
        match m.element(sa).kind {
            NodeKind::CallActivity(d) => assert_eq!(d, sub),
            _ => panic!("wrong kind"),
        }
        assert_eq!(m.diagram_by_name("SA").unwrap().id, sub);
    }

    #[test]
    fn perf_elements_ordered_by_diagram_then_creation() {
        let mut m = Model::new("order");
        let main = m.main_diagram();
        let sub = m.add_diagram("sub");
        // Create sub element first in arena order but it must come second
        // because its diagram is later.
        let s1 = m.add_element(sub, "S1", NodeKind::Action, Some(action_plus("1")));
        let a1 = m.add_element(main, "A1", NodeKind::Action, Some(action_plus("1")));
        let a2 = m.add_element(main, "A2", NodeKind::Action, Some(action_plus("1")));
        assert_eq!(m.performance_elements(), vec![a1, a2, s1]);
    }

    #[test]
    fn non_stereotyped_elements_not_performance_relevant() {
        let mut m = Model::new("plain");
        let main = m.main_diagram();
        m.add_element(main, "start", NodeKind::Initial, None);
        m.add_element(main, "dec", NodeKind::Decision, None);
        assert!(m.performance_elements().is_empty());
    }

    #[test]
    fn edges_and_guards() {
        let mut m = Model::new("guards");
        let main = m.main_diagram();
        let d = m.add_element(main, "dec", NodeKind::Decision, None);
        let a = m.add_element(main, "A", NodeKind::Action, None);
        let b = m.add_element(main, "B", NodeKind::Action, None);
        m.add_edge(main, d, a, Some("GV > 0".into()));
        m.add_edge(main, d, b, Some("else".into()));
        let dg = m.diagram(main);
        let outs: Vec<_> = dg.outgoing(d).collect();
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].guard.as_deref(), Some("GV > 0"));
        assert_eq!(dg.incoming(a).count(), 1);
    }

    #[test]
    fn duplicate_initials_detected() {
        let mut m = Model::new("twoinit");
        let main = m.main_diagram();
        m.add_element(main, "i1", NodeKind::Initial, None);
        m.add_element(main, "i2", NodeKind::Initial, None);
        assert_eq!(m.initial_of(main), None);
    }

    #[test]
    fn variables_partition_by_scope() {
        let mut m = Model::new("vars");
        m.add_variable(Variable {
            name: "GV".into(),
            var_type: VarType::Int,
            scope: VarScope::Global,
            init: Some("0".into()),
        });
        m.add_variable(Variable {
            name: "t".into(),
            var_type: VarType::Double,
            scope: VarScope::Local,
            init: None,
        });
        assert_eq!(m.globals().count(), 1);
        assert_eq!(m.locals().count(), 1);
        assert_eq!(m.globals().next().unwrap().var_type.cpp(), "int");
    }

    #[test]
    fn mpi_stereotypes_are_performance_relevant() {
        let mut m = Model::new("mpi");
        let main = m.main_diagram();
        let send = m.add_element(
            main,
            "s0",
            NodeKind::Action,
            Some(StereotypeApplication::new("send").with("dest", TagValue::Expr("1".into()))),
        );
        assert!(m.element(send).is_performance_element());
    }
}
