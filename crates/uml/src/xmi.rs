//! XMI-flavoured XML serialization of models — the `Models (XML)` artifact
//! of the Figure-2 architecture, generated (like the C++ representation)
//! through a [`ContentHandler`] over the Figure-6 traverser.

use crate::model::{
    DiagramId, Edge, ElementId, FunctionDecl, Model, NodeKind, VarScope, VarType, Variable,
};
use crate::profile::{StereotypeApplication, TagType, TagValue};
use crate::traverse::{ContentHandler, ExplicitStackNavigator, Traverser, VisitPhase};
use prophet_xml::{Document, Element as XmlElement, XmlError, XmlResult};

/// Serialize a model to an XML document string.
pub fn model_to_xml(model: &Model) -> String {
    let mut handler = XmlContentHandler::new();
    let mut nav = ExplicitStackNavigator::new(model.main_diagram());
    Traverser::new().traverse(model, &mut nav, &mut handler);
    let root = handler.finish(model);
    Document::with_root(root).to_xml_string()
}

/// Parse a model from XML produced by [`model_to_xml`].
pub fn model_from_xml(xml: &str) -> XmlResult<Model> {
    let doc = prophet_xml::parse_document(xml)?;
    read_model(&doc.root)
}

/// A [`ContentHandler`] that builds the XML tree during traversal —
/// the "generation of different model representations (XML and C++)"
/// responsibility of the Model Traverser.
struct XmlContentHandler {
    /// Stack of open `<diagram>` XML elements.
    stack: Vec<XmlElement>,
    /// Finished top-level diagram elements in traversal order.
    diagrams: Vec<XmlElement>,
}

impl XmlContentHandler {
    fn new() -> Self {
        Self {
            stack: Vec::new(),
            diagrams: Vec::new(),
        }
    }

    fn finish(mut self, model: &Model) -> XmlElement {
        assert!(self.stack.is_empty(), "unbalanced diagram traversal");
        let mut root = XmlElement::new("model").with_attr("name", model.name.clone());
        root.set_attr("profile", model.profile.name.clone());

        let mut vars = XmlElement::new("variables");
        for v in &model.variables {
            let mut ve = XmlElement::new("variable")
                .with_attr("name", v.name.clone())
                .with_attr("type", v.var_type.cpp())
                .with_attr(
                    "scope",
                    match v.scope {
                        VarScope::Global => "global",
                        VarScope::Local => "local",
                    },
                );
            if let Some(init) = &v.init {
                ve.set_attr("init", init.clone());
            }
            vars.push_element(ve);
        }
        root.push_element(vars);

        let mut funcs = XmlElement::new("functions");
        for f in &model.functions {
            funcs.push_element(
                XmlElement::new("function")
                    .with_attr("name", f.name.clone())
                    .with_attr("params", f.params.join(","))
                    .with_attr("body", f.body.clone()),
            );
        }
        root.push_element(funcs);

        for d in self.diagrams.drain(..) {
            root.push_element(d);
        }
        root
    }

    fn element_to_xml(model: &Model, eid: ElementId) -> XmlElement {
        let el = model.element(eid);
        let mut xe = XmlElement::new("element")
            .with_attr("id", eid.0.to_string())
            .with_attr("name", el.name.clone())
            .with_attr("kind", el.kind.tag());
        if let NodeKind::CallActivity(sub) = el.kind {
            xe.set_attr("sub", model.diagram(sub).name.clone());
        }
        if let Some(st) = &el.stereotype {
            let mut se = XmlElement::new("stereotype").with_attr("name", st.stereotype.clone());
            for (tag, value) in &st.values {
                let kind = match value {
                    TagValue::Int(_) => "Integer",
                    TagValue::Num(_) => "Double",
                    TagValue::Str(_) => "String",
                    TagValue::Bool(_) => "Boolean",
                    TagValue::Expr(_) => "Expression",
                    TagValue::Code(_) => "Code",
                };
                se.push_element(
                    XmlElement::new("tag")
                        .with_attr("name", tag.clone())
                        .with_attr("type", kind)
                        .with_attr("value", value.to_text()),
                );
            }
            xe.push_element(se);
        }
        xe
    }
}

impl ContentHandler for XmlContentHandler {
    fn begin_diagram(&mut self, model: &Model, diagram: DiagramId) {
        let d = model.diagram(diagram);
        self.stack
            .push(XmlElement::new("diagram").with_attr("name", d.name.clone()));
    }

    fn visit_element(&mut self, model: &Model, element: ElementId, phase: VisitPhase) {
        if phase != VisitPhase::Enter {
            return;
        }
        let xe = Self::element_to_xml(model, element);
        // Composite bodies serialize as *separate* diagrams (the nested
        // diagram element is pushed onto the stack right after this Enter),
        // so the element node itself always attaches to the current open
        // diagram — except that for CallActivity the open diagram is
        // already the sub one. Attach to the parent instead.
        match model.element(element).kind {
            NodeKind::CallActivity(_) => {
                // The sub-diagram was not opened yet at Enter time; the
                // navigator opens it immediately after. Safe to attach to
                // the current top.
                self.stack
                    .last_mut()
                    .expect("open diagram")
                    .push_element(xe);
            }
            _ => {
                self.stack
                    .last_mut()
                    .expect("open diagram")
                    .push_element(xe);
            }
        }
    }

    fn end_diagram(&mut self, model: &Model, diagram: DiagramId) {
        let mut top = self.stack.pop().expect("balanced");
        // Append edges after the nodes.
        let d = model.diagram(diagram);
        let mut edges = XmlElement::new("edges");
        for Edge { from, to, guard } in &d.edges {
            let mut ee = XmlElement::new("flow")
                .with_attr("from", from.0.to_string())
                .with_attr("to", to.0.to_string());
            if let Some(g) = guard {
                ee.set_attr("guard", g.clone());
            }
            edges.push_element(ee);
        }
        top.push_element(edges);
        self.diagrams.push(top);
    }
}

fn read_model(root: &XmlElement) -> XmlResult<Model> {
    if root.name != "model" {
        return Err(XmlError::structural(format!(
            "expected <model>, found <{}>",
            root.name
        )));
    }
    let mut model = Model::new(root.required_attr("name")?);

    if let Some(vars) = root.child("variables") {
        for v in vars.children_named("variable") {
            let var_type = match v.required_attr("type")? {
                "int" => VarType::Int,
                "double" => VarType::Double,
                "bool" => VarType::Bool,
                other => {
                    return Err(XmlError::structural(format!(
                        "unknown variable type `{other}`"
                    )))
                }
            };
            let scope = match v.required_attr("scope")? {
                "global" => VarScope::Global,
                "local" => VarScope::Local,
                other => {
                    return Err(XmlError::structural(format!(
                        "unknown variable scope `{other}`"
                    )))
                }
            };
            model.add_variable(Variable {
                name: v.required_attr("name")?.to_string(),
                var_type,
                scope,
                init: v.attr("init").map(|s| s.to_string()),
            });
        }
    }

    if let Some(funcs) = root.child("functions") {
        for f in funcs.children_named("function") {
            let params_raw = f.attr("params").unwrap_or("");
            let params = if params_raw.is_empty() {
                Vec::new()
            } else {
                params_raw
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect()
            };
            model.add_function(FunctionDecl {
                name: f.required_attr("name")?.to_string(),
                params,
                body: f.required_attr("body")?.to_string(),
            });
        }
    }

    // Pass 1: create all diagrams by name (main exists already).
    for d in root.children_named("diagram") {
        let name = d.required_attr("name")?;
        if name != "main" && model.diagram_by_name(name).is_none() {
            model.add_diagram(name);
        }
    }

    // Pass 2: elements. Keep a map from serialized id → new ElementId.
    let mut id_map: Vec<(usize, ElementId)> = Vec::new();
    for d in root.children_named("diagram") {
        let did = model
            .diagram_by_name(d.required_attr("name")?)
            .expect("created in pass 1")
            .id;
        for e in d.children_named("element") {
            let old_id: usize = e
                .required_attr("id")?
                .parse()
                .map_err(|_| XmlError::structural("bad element id"))?;
            let kind = match e.required_attr("kind")? {
                "initial" => NodeKind::Initial,
                "final" => NodeKind::ActivityFinal,
                "flowfinal" => NodeKind::FlowFinal,
                "action" => NodeKind::Action,
                "decision" => NodeKind::Decision,
                "merge" => NodeKind::Merge,
                "fork" => NodeKind::Fork,
                "join" => NodeKind::Join,
                "activity" => {
                    let sub_name = e.required_attr("sub")?;
                    let sub = model
                        .diagram_by_name(sub_name)
                        .ok_or_else(|| {
                            XmlError::structural(format!("unknown sub-diagram `{sub_name}`"))
                        })?
                        .id;
                    NodeKind::CallActivity(sub)
                }
                other => {
                    return Err(XmlError::structural(format!(
                        "unknown element kind `{other}`"
                    )))
                }
            };
            let stereotype = match e.child("stereotype") {
                Some(se) => {
                    let mut app = StereotypeApplication::new(se.required_attr("name")?);
                    for t in se.children_named("tag") {
                        let tt = match t.required_attr("type")? {
                            "Integer" => TagType::Integer,
                            "Double" => TagType::Double,
                            "String" => TagType::String,
                            "Boolean" => TagType::Boolean,
                            "Expression" => TagType::Expression,
                            "Code" => TagType::Code,
                            other => {
                                return Err(XmlError::structural(format!(
                                    "unknown tag type `{other}`"
                                )))
                            }
                        };
                        let value = TagValue::from_text(tt, t.required_attr("value")?)
                            .map_err(XmlError::structural)?;
                        app.set(t.required_attr("name")?, value);
                    }
                    Some(app)
                }
                None => None,
            };
            let new_id = model.add_element(did, e.required_attr("name")?, kind, stereotype);
            id_map.push((old_id, new_id));
        }
    }

    let lookup = |old: usize| -> XmlResult<ElementId> {
        id_map
            .iter()
            .find(|(o, _)| *o == old)
            .map(|(_, n)| *n)
            .ok_or_else(|| XmlError::structural(format!("edge references unknown element {old}")))
    };

    // Pass 3: edges.
    for d in root.children_named("diagram") {
        let did = model
            .diagram_by_name(d.required_attr("name")?)
            .expect("pass 1")
            .id;
        if let Some(edges) = d.child("edges") {
            for f in edges.children_named("flow") {
                let from: usize = f
                    .required_attr("from")?
                    .parse()
                    .map_err(|_| XmlError::structural("bad from id"))?;
                let to: usize = f
                    .required_attr("to")?
                    .parse()
                    .map_err(|_| XmlError::structural("bad to id"))?;
                model.add_edge(
                    did,
                    lookup(from)?,
                    lookup(to)?,
                    f.attr("guard").map(|s| s.to_string()),
                );
            }
        }
    }

    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;

    fn demo_model() -> Model {
        let mut b = ModelBuilder::new("demo");
        b.global("GV", VarType::Int, Some("0"));
        b.global("P", VarType::Int, Some("4"));
        b.local("t", VarType::Double, None);
        b.function("FA1", &[], "0.04 + 0.01 * P");
        b.function("FSA2", &["pid"], "0.1 * pid");
        let main = b.main_diagram();
        let sub = b.diagram("SA");
        let i = b.initial(main, "start");
        let a1 = b.action(main, "A1", "FA1()");
        b.attach_code(a1, "GV = 1; P = 4;");
        let dec = b.decision(main, "dec");
        let sa = b.call_activity(main, "SA", sub);
        let a2 = b.action(main, "A2", "FA2()");
        let m2 = b.merge(main, "merge");
        let f = b.final_node(main, "end");
        b.flow(main, i, a1);
        b.flow(main, a1, dec);
        b.guarded_flow(main, dec, sa, "GV == 1");
        b.guarded_flow(main, dec, a2, "else");
        b.flow(main, sa, m2);
        b.flow(main, a2, m2);
        b.flow(main, m2, f);
        let sa1 = b.action(sub, "SA1", "FSA1()");
        let sa2 = b.action(sub, "SA2", "FSA2(pid)");
        b.flow(sub, sa1, sa2);
        b.build()
    }

    #[test]
    fn xml_contains_expected_structure() {
        let m = demo_model();
        let xml = model_to_xml(&m);
        assert!(xml.contains("<model name=\"demo\""), "{xml}");
        assert!(xml.contains("<variable name=\"GV\" type=\"int\" scope=\"global\" init=\"0\"/>"));
        assert!(xml.contains("<function name=\"FA1\""));
        assert!(xml.contains("guard=\"GV == 1\""));
        assert!(xml.contains("<diagram name=\"SA\">"));
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let m = demo_model();
        let xml = model_to_xml(&m);
        let back = model_from_xml(&xml).unwrap();

        assert_eq!(back.name, m.name);
        assert_eq!(back.element_count(), m.element_count());
        assert_eq!(back.variables, m.variables);
        assert_eq!(back.functions, m.functions);
        assert_eq!(back.diagrams.len(), m.diagrams.len());
        for (d1, d2) in m.diagrams.iter().zip(&back.diagrams) {
            assert_eq!(d1.name, d2.name);
            assert_eq!(d1.nodes.len(), d2.nodes.len());
            assert_eq!(d1.edges.len(), d2.edges.len());
        }
        // Element-level fidelity by name.
        for el in m.elements() {
            let other = back.element_by_name(&el.name).expect("element survives");
            assert_eq!(other.kind.tag(), el.kind.tag(), "kind of {}", el.name);
            assert_eq!(
                other.stereotype.as_ref().map(|s| &s.values),
                el.stereotype.as_ref().map(|s| &s.values),
                "tags of {}",
                el.name
            );
        }
        // Arena ids are renumbered on reload (they are arena indices), so
        // the first re-serialization may differ in `id` attributes only.
        // After one roundtrip the numbering is canonical: a second
        // roundtrip must be byte-identical.
        let xml2 = model_to_xml(&back);
        let back2 = model_from_xml(&xml2).unwrap();
        assert_eq!(model_to_xml(&back2), xml2);
    }

    #[test]
    fn code_fragment_survives_roundtrip() {
        let m = demo_model();
        let back = model_from_xml(&model_to_xml(&m)).unwrap();
        assert_eq!(
            back.element_by_name("A1").unwrap().code_fragment(),
            Some("GV = 1; P = 4;")
        );
    }

    #[test]
    fn malformed_rejected() {
        assert!(model_from_xml("<notamodel/>").is_err());
        assert!(model_from_xml("<model/>").is_err()); // missing name
        let bad_edge = r#"<model name="m"><diagram name="main"><edges><flow from="99" to="98"/></edges></diagram></model>"#;
        assert!(model_from_xml(bad_edge).is_err());
    }

    #[test]
    fn unknown_kind_rejected() {
        let bad = r#"<model name="m"><diagram name="main"><element id="0" name="x" kind="banana"/></diagram></model>"#;
        let err = model_from_xml(bad).unwrap_err();
        assert!(err.message.contains("banana"), "{err}");
    }
}
