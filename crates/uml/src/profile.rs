//! UML extension mechanisms: stereotypes, tag definitions, tagged values,
//! and the performance-modeling profile of the paper.
//!
//! Figure 1 of the paper defines `<<action+>>` as a stereotype of the UML
//! metaclass `Action` with tag definitions `id : Integer`,
//! `type : String`, `time : Double`. This module reproduces that machinery
//! generically and then instantiates the full profile used by Performance
//! Prophet ([`performance_profile`]).

use std::collections::BTreeMap;
use std::fmt;

/// The type of a tag definition (metaattribute).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagType {
    /// Whole numbers (`id`).
    Integer,
    /// Floating point (`time`).
    Double,
    /// Free text (`type`).
    String,
    /// Booleans.
    Boolean,
    /// A cost-function expression, validated by the model checker against
    /// the prophet-expr grammar.
    Expression,
    /// An associated code fragment (statements), Figure 7(b).
    Code,
}

impl fmt::Display for TagType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TagType::Integer => "Integer",
            TagType::Double => "Double",
            TagType::String => "String",
            TagType::Boolean => "Boolean",
            TagType::Expression => "Expression",
            TagType::Code => "Code",
        };
        f.write_str(s)
    }
}

/// A tag definition within a stereotype.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagDef {
    /// Tag name (`id`, `type`, `time`, `cost`, …).
    pub name: String,
    /// Value type.
    pub tag_type: TagType,
    /// Whether the model checker requires a value.
    pub required: bool,
}

impl TagDef {
    /// Convenience constructor.
    pub fn new(name: &str, tag_type: TagType, required: bool) -> Self {
        Self {
            name: name.into(),
            tag_type,
            required,
        }
    }
}

/// The UML metaclass a stereotype extends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseMetaclass {
    /// UML `Action` ("the fundamental unit of behavior specification").
    Action,
    /// UML `Activity` / structured node.
    Activity,
    /// UML `ControlFlow` edges.
    ControlFlow,
}

/// A stereotype definition (Figure 1(a)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stereotype {
    /// Name without guillemets, e.g. `action+`.
    pub name: String,
    /// Extended metaclass.
    pub base: BaseMetaclass,
    /// Tag definitions.
    pub tags: Vec<TagDef>,
    /// Informal constraints, checked by prophet-check where machine-checkable.
    pub constraints: Vec<String>,
}

impl Stereotype {
    /// Look up a tag definition.
    pub fn tag(&self, name: &str) -> Option<&TagDef> {
        self.tags.iter().find(|t| t.name == name)
    }

    /// Guillemet display form: `<<action+>>`.
    pub fn display_name(&self) -> String {
        format!("<<{}>>", self.name)
    }
}

/// A value given to a tag in a stereotype application (Figure 1(b)).
#[derive(Debug, Clone, PartialEq)]
pub enum TagValue {
    /// Integer value.
    Int(i64),
    /// Double value.
    Num(f64),
    /// String value.
    Str(String),
    /// Boolean value.
    Bool(bool),
    /// Expression source text (cost functions, guards, counts).
    Expr(String),
    /// Code fragment source text.
    Code(String),
}

impl TagValue {
    /// True if this value is acceptable for the given tag type.
    pub fn matches(&self, tag_type: TagType) -> bool {
        matches!(
            (self, tag_type),
            (TagValue::Int(_), TagType::Integer)
                | (TagValue::Num(_), TagType::Double)
                | (TagValue::Str(_), TagType::String)
                | (TagValue::Bool(_), TagType::Boolean)
                | (TagValue::Expr(_), TagType::Expression)
                | (TagValue::Code(_), TagType::Code)
        )
    }

    /// Render for XML storage.
    pub fn to_text(&self) -> String {
        match self {
            TagValue::Int(i) => i.to_string(),
            TagValue::Num(n) => n.to_string(),
            TagValue::Str(s) | TagValue::Expr(s) | TagValue::Code(s) => s.clone(),
            TagValue::Bool(b) => b.to_string(),
        }
    }

    /// Parse from XML storage given the declared type.
    pub fn from_text(tag_type: TagType, text: &str) -> Result<TagValue, String> {
        Ok(match tag_type {
            TagType::Integer => {
                TagValue::Int(text.parse().map_err(|_| format!("bad Integer `{text}`"))?)
            }
            TagType::Double => {
                TagValue::Num(text.parse().map_err(|_| format!("bad Double `{text}`"))?)
            }
            TagType::String => TagValue::Str(text.to_string()),
            TagType::Boolean => {
                TagValue::Bool(text.parse().map_err(|_| format!("bad Boolean `{text}`"))?)
            }
            TagType::Expression => TagValue::Expr(text.to_string()),
            TagType::Code => TagValue::Code(text.to_string()),
        })
    }

    /// Expression text, if this is an expression-like value.
    pub fn as_expr(&self) -> Option<&str> {
        match self {
            TagValue::Expr(s) | TagValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A stereotype applied to a model element, with tagged values
/// (Figure 1(b): `SampleAction «action+» {id = 1, type = SAMPLE,
/// time = 10}`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StereotypeApplication {
    /// The stereotype's name (`action+`).
    pub stereotype: String,
    /// Tagged values in insertion order.
    pub values: Vec<(String, TagValue)>,
}

impl StereotypeApplication {
    /// Apply `stereotype` with no tags yet.
    pub fn new(stereotype: impl Into<String>) -> Self {
        Self {
            stereotype: stereotype.into(),
            values: Vec::new(),
        }
    }

    /// Builder-style tag assignment.
    pub fn with(mut self, tag: &str, value: TagValue) -> Self {
        self.set(tag, value);
        self
    }

    /// Set (or replace) a tagged value.
    pub fn set(&mut self, tag: &str, value: TagValue) {
        if let Some(slot) = self.values.iter_mut().find(|(n, _)| n == tag) {
            slot.1 = value;
        } else {
            self.values.push((tag.to_string(), value));
        }
    }

    /// Read a tagged value.
    pub fn get(&self, tag: &str) -> Option<&TagValue> {
        self.values.iter().find(|(n, _)| n == tag).map(|(_, v)| v)
    }

    /// Guillemet + tags display form used by Teuta labels.
    pub fn display(&self) -> String {
        if self.values.is_empty() {
            return format!("<<{}>>", self.stereotype);
        }
        let tags = self
            .values
            .iter()
            .map(|(n, v)| format!("{n} = {}", v.to_text()))
            .collect::<Vec<_>>()
            .join(", ");
        format!("<<{}>> {{{tags}}}", self.stereotype)
    }
}

/// A profile: a named set of stereotypes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Profile {
    /// Profile name.
    pub name: String,
    stereotypes: BTreeMap<String, Stereotype>,
}

impl Profile {
    /// Empty profile.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            stereotypes: BTreeMap::new(),
        }
    }

    /// Add (or replace) a stereotype definition.
    pub fn define(&mut self, s: Stereotype) {
        self.stereotypes.insert(s.name.clone(), s);
    }

    /// Look up a stereotype by name.
    pub fn get(&self, name: &str) -> Option<&Stereotype> {
        self.stereotypes.get(name)
    }

    /// Iterate stereotypes in name order (deterministic).
    pub fn stereotypes(&self) -> impl Iterator<Item = &Stereotype> {
        self.stereotypes.values()
    }

    /// Number of stereotypes.
    pub fn len(&self) -> usize {
        self.stereotypes.len()
    }

    /// True when the profile defines no stereotypes.
    pub fn is_empty(&self) -> bool {
        self.stereotypes.is_empty()
    }
}

/// The Performance Prophet profile: the paper's `<<action+>>` /
/// `<<activity+>>` plus the message-passing and shared-memory building
/// blocks of the authors' UML extension \[17, 18\].
pub fn performance_profile() -> Profile {
    let mut p = Profile::new("PerformanceProphet");

    // Figure 1(a): action+ with id/type/time, plus the cost function and
    // code fragment associations used in Section 4.
    p.define(Stereotype {
        name: "action+".into(),
        base: BaseMetaclass::Action,
        tags: vec![
            TagDef::new("id", TagType::Integer, false),
            TagDef::new("type", TagType::String, false),
            TagDef::new("time", TagType::Double, false),
            TagDef::new("cost", TagType::Expression, false),
            TagDef::new("code", TagType::Code, false),
        ],
        constraints: vec!["models a single-entry single-exit code region".into()],
    });

    p.define(Stereotype {
        name: "activity+".into(),
        base: BaseMetaclass::Activity,
        tags: vec![
            TagDef::new("id", TagType::Integer, false),
            TagDef::new("type", TagType::String, false),
            TagDef::new("diagram", TagType::String, false),
        ],
        constraints: vec!["content is described by a nested activity diagram".into()],
    });

    // Structured repetition (kernels are loop-dominated — Section 3).
    p.define(Stereotype {
        name: "loop+".into(),
        base: BaseMetaclass::Activity,
        tags: vec![
            TagDef::new("id", TagType::Integer, false),
            TagDef::new("iterations", TagType::Expression, true),
            TagDef::new("variable", TagType::String, false),
        ],
        constraints: vec!["body executes `iterations` times".into()],
    });

    // Message passing building blocks (MPI paradigm).
    for (name, extra) in [
        ("send", vec![TagDef::new("dest", TagType::Expression, true)]),
        ("recv", vec![TagDef::new("src", TagType::Expression, true)]),
        (
            "broadcast",
            vec![TagDef::new("root", TagType::Expression, true)],
        ),
        (
            "reduce",
            vec![TagDef::new("root", TagType::Expression, true)],
        ),
        ("allreduce", vec![]),
        (
            "scatter",
            vec![TagDef::new("root", TagType::Expression, true)],
        ),
        (
            "gather",
            vec![TagDef::new("root", TagType::Expression, true)],
        ),
        ("barrier", vec![]),
    ] {
        let mut tags = vec![
            TagDef::new("id", TagType::Integer, false),
            TagDef::new("size", TagType::Expression, false),
            TagDef::new("tag", TagType::Integer, false),
        ];
        tags.extend(extra);
        p.define(Stereotype {
            name: name.into(),
            base: BaseMetaclass::Action,
            tags,
            constraints: vec![format!("models MPI {name}")],
        });
    }

    // Shared-memory (OpenMP paradigm).
    p.define(Stereotype {
        name: "parallel+".into(),
        base: BaseMetaclass::Activity,
        tags: vec![
            TagDef::new("id", TagType::Integer, false),
            TagDef::new("threads", TagType::Expression, false),
            TagDef::new("schedule", TagType::String, false),
        ],
        constraints: vec!["body is executed by a team of threads".into()],
    });
    p.define(Stereotype {
        name: "critical+".into(),
        base: BaseMetaclass::Activity,
        tags: vec![
            TagDef::new("id", TagType::Integer, false),
            TagDef::new("lock", TagType::String, false),
        ],
        constraints: vec!["body is executed under mutual exclusion".into()],
    });

    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_definition() {
        let p = performance_profile();
        let s = p.get("action+").expect("action+ defined");
        assert_eq!(s.base, BaseMetaclass::Action);
        assert_eq!(s.tag("id").unwrap().tag_type, TagType::Integer);
        assert_eq!(s.tag("type").unwrap().tag_type, TagType::String);
        assert_eq!(s.tag("time").unwrap().tag_type, TagType::Double);
        assert_eq!(s.display_name(), "<<action+>>");
    }

    #[test]
    fn figure1_usage() {
        // SampleAction «action+» {id = 1, type = SAMPLE, time = 10}
        let app = StereotypeApplication::new("action+")
            .with("id", TagValue::Int(1))
            .with("type", TagValue::Str("SAMPLE".into()))
            .with("time", TagValue::Num(10.0));
        assert_eq!(
            app.display(),
            "<<action+>> {id = 1, type = SAMPLE, time = 10}"
        );
        assert_eq!(app.get("id"), Some(&TagValue::Int(1)));
    }

    #[test]
    fn tag_value_type_checking() {
        assert!(TagValue::Int(1).matches(TagType::Integer));
        assert!(!TagValue::Int(1).matches(TagType::Double));
        assert!(TagValue::Expr("P * 2".into()).matches(TagType::Expression));
    }

    #[test]
    fn tag_value_text_roundtrip() {
        for (v, t) in [
            (TagValue::Int(-3), TagType::Integer),
            (TagValue::Num(2.5), TagType::Double),
            (TagValue::Str("SAMPLE".into()), TagType::String),
            (TagValue::Bool(true), TagType::Boolean),
            (TagValue::Expr("FA1(P)".into()), TagType::Expression),
            (TagValue::Code("GV = 1;".into()), TagType::Code),
        ] {
            let text = v.to_text();
            let back = TagValue::from_text(t, &text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(TagValue::from_text(TagType::Integer, "abc").is_err());
        assert!(TagValue::from_text(TagType::Double, "1.2.3").is_err());
        assert!(TagValue::from_text(TagType::Boolean, "yes").is_err());
    }

    #[test]
    fn profile_contains_mpi_and_openmp_blocks() {
        let p = performance_profile();
        for s in [
            "send",
            "recv",
            "broadcast",
            "barrier",
            "reduce",
            "scatter",
            "gather",
            "allreduce",
            "parallel+",
            "critical+",
            "loop+",
        ] {
            assert!(p.get(s).is_some(), "missing stereotype {s}");
        }
        assert!(p.len() >= 13);
        // Required tags enforced by definition.
        assert!(p.get("send").unwrap().tag("dest").unwrap().required);
        assert!(p.get("loop+").unwrap().tag("iterations").unwrap().required);
    }

    #[test]
    fn set_replaces_value() {
        let mut app = StereotypeApplication::new("action+");
        app.set("time", TagValue::Num(1.0));
        app.set("time", TagValue::Num(2.0));
        assert_eq!(app.values.len(), 1);
        assert_eq!(app.get("time"), Some(&TagValue::Num(2.0)));
    }
}
