//! The Figure-6 model traverser: `Traverser`, `Navigator`,
//! `ContentHandler`.
//!
//! The paper (Section 3, Figure 6) describes model traversal as three
//! entities communicating only through well-defined interfaces:
//!
//! 1. the **Traverser** sends a *navigation command* to the **Navigator**;
//! 2. the Traverser obtains the *current element* `ce` from the Navigator;
//! 3. the Traverser asks the **ContentHandler** to *visit* `ce` and
//!    generate the corresponding code.
//!
//! "Each implementation of one of these components can be combined with
//! any implementation of the other two" — so both roles are traits here:
//! [`Navigator`] (with an explicit-stack implementation and a recursive
//! one, ablation A2) and [`ContentHandler`] (implemented by the XML
//! emitter, the C++ emitter in prophet-codegen, and test recorders).
//! The optional [`TraceMessage`] log lets tests assert the exact Figure-6
//! message sequence.

use crate::model::{DiagramId, ElementId, Model, NodeKind};

/// Whether a visit is entering or leaving a (possibly composite) element.
///
/// Composite `<<activity+>>` elements contain nested diagrams; handlers
/// that generate nested C++ blocks need both phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VisitPhase {
    /// Before the element's children (if any) are visited.
    Enter,
    /// After the element's children are visited. Leaf elements get both
    /// phases back-to-back.
    Leave,
}

/// The receiving side of a traversal: generates a model representation.
pub trait ContentHandler {
    /// Called once before any element.
    fn begin_model(&mut self, _model: &Model) {}
    /// Called entering a diagram (the main diagram or a composite's body).
    fn begin_diagram(&mut self, _model: &Model, _diagram: DiagramId) {}
    /// Visit one element.
    fn visit_element(&mut self, model: &Model, element: ElementId, phase: VisitPhase);
    /// Called leaving a diagram.
    fn end_diagram(&mut self, _model: &Model, _diagram: DiagramId) {}
    /// Called once after all elements.
    fn end_model(&mut self, _model: &Model) {}
}

/// One step produced by a [`Navigator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NavStep {
    /// Entering a diagram.
    EnterDiagram(DiagramId),
    /// An element visit (with phase).
    Element(ElementId, VisitPhase),
    /// Leaving a diagram.
    LeaveDiagram(DiagramId),
    /// Traversal finished.
    Done,
}

/// The navigation side of a traversal: yields the current element on
/// demand.
pub trait Navigator {
    /// Advance to the next step ("navigationCommand()" in Figure 6) and
    /// return it ("getCurrentElement()").
    fn next_step(&mut self, model: &Model) -> NavStep;
}

/// Iterative navigator using an explicit work stack (production default).
///
/// Order: for each diagram, elements in creation order; composite
/// elements (`CallActivity`) recurse into their body diagram between their
/// `Enter` and `Leave` phases. This is the tree walk of Figure 5.
pub struct ExplicitStackNavigator {
    stack: Vec<Frame>,
    started: bool,
    root: DiagramId,
}

enum Frame {
    Diagram {
        id: DiagramId,
        next: usize,
        opened: bool,
    },
    Leave(ElementId),
}

impl ExplicitStackNavigator {
    /// Traverse starting from `root` (usually the main diagram).
    pub fn new(root: DiagramId) -> Self {
        Self {
            stack: Vec::new(),
            started: false,
            root,
        }
    }
}

impl Navigator for ExplicitStackNavigator {
    fn next_step(&mut self, model: &Model) -> NavStep {
        if !self.started {
            self.started = true;
            self.stack.push(Frame::Diagram {
                id: self.root,
                next: 0,
                opened: false,
            });
        }
        match self.stack.last_mut() {
            None => NavStep::Done,
            Some(Frame::Leave(eid)) => {
                let eid = *eid;
                self.stack.pop();
                NavStep::Element(eid, VisitPhase::Leave)
            }
            Some(Frame::Diagram { id, next, opened }) => {
                let did = *id;
                if !*opened {
                    *opened = true;
                    return NavStep::EnterDiagram(did);
                }
                let nodes = &model.diagram(did).nodes;
                if *next >= nodes.len() {
                    self.stack.pop();
                    return NavStep::LeaveDiagram(did);
                }
                let eid = nodes[*next];
                *next += 1;
                // The Leave phase fires after this element's subtree; a
                // composite additionally pushes its body diagram so that
                // the body is visited between the two phases.
                self.stack.push(Frame::Leave(eid));
                if let NodeKind::CallActivity(sub) = model.element(eid).kind {
                    self.stack.push(Frame::Diagram {
                        id: sub,
                        next: 0,
                        opened: false,
                    });
                }
                NavStep::Element(eid, VisitPhase::Enter)
            }
        }
    }
}

/// Recursive walk (ablation A2): produces the same step sequence as
/// [`ExplicitStackNavigator`] by materializing it eagerly with recursion,
/// then replaying.
pub struct RecursiveWalk {
    steps: std::vec::IntoIter<NavStep>,
}

impl RecursiveWalk {
    /// Build the full step list for `root` recursively.
    pub fn new(model: &Model, root: DiagramId) -> Self {
        let mut steps = Vec::new();
        fn walk(model: &Model, d: DiagramId, out: &mut Vec<NavStep>) {
            out.push(NavStep::EnterDiagram(d));
            for &eid in &model.diagram(d).nodes {
                out.push(NavStep::Element(eid, VisitPhase::Enter));
                if let NodeKind::CallActivity(sub) = model.element(eid).kind {
                    walk(model, sub, out);
                }
                out.push(NavStep::Element(eid, VisitPhase::Leave));
            }
            out.push(NavStep::LeaveDiagram(d));
        }
        walk(model, root, &mut steps);
        steps.push(NavStep::Done);
        Self {
            steps: steps.into_iter(),
        }
    }
}

impl Navigator for RecursiveWalk {
    fn next_step(&mut self, _model: &Model) -> NavStep {
        self.steps.next().unwrap_or(NavStep::Done)
    }
}

/// One message of the Figure-6 communication diagram, for protocol tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceMessage {
    /// Traverser → Navigator.
    NavigationCommand,
    /// Navigator → Traverser (the current element's name, or a marker).
    GetCurrentElement(String),
    /// Traverser → ContentHandler.
    VisitElement(String),
}

/// The driving side: pulls steps from a navigator and forwards visits to a
/// content handler, optionally recording the message protocol.
pub struct Traverser {
    /// Recorded Figure-6 messages (empty unless `record_protocol`).
    pub protocol: Vec<TraceMessage>,
    record_protocol: bool,
}

impl Default for Traverser {
    fn default() -> Self {
        Self::new()
    }
}

impl Traverser {
    /// A traverser that does not record the protocol.
    pub fn new() -> Self {
        Self {
            protocol: Vec::new(),
            record_protocol: false,
        }
    }

    /// A traverser that records every Figure-6 message.
    pub fn recording() -> Self {
        Self {
            protocol: Vec::new(),
            record_protocol: true,
        }
    }

    /// Drive `navigator` over `model`, forwarding to `handler`.
    /// Returns the number of element visits (both phases).
    pub fn traverse(
        &mut self,
        model: &Model,
        navigator: &mut dyn Navigator,
        handler: &mut dyn ContentHandler,
    ) -> usize {
        handler.begin_model(model);
        let mut visits = 0;
        loop {
            if self.record_protocol {
                self.protocol.push(TraceMessage::NavigationCommand);
            }
            let step = navigator.next_step(model);
            match step {
                NavStep::Done => break,
                NavStep::EnterDiagram(d) => {
                    if self.record_protocol {
                        self.protocol.push(TraceMessage::GetCurrentElement(format!(
                            "diagram:{}",
                            model.diagram(d).name
                        )));
                    }
                    handler.begin_diagram(model, d);
                }
                NavStep::LeaveDiagram(d) => {
                    if self.record_protocol {
                        self.protocol.push(TraceMessage::GetCurrentElement(format!(
                            "/diagram:{}",
                            model.diagram(d).name
                        )));
                    }
                    handler.end_diagram(model, d);
                }
                NavStep::Element(eid, phase) => {
                    let name = model.element(eid).name.clone();
                    if self.record_protocol {
                        self.protocol
                            .push(TraceMessage::GetCurrentElement(name.clone()));
                        self.protocol.push(TraceMessage::VisitElement(name));
                    }
                    handler.visit_element(model, eid, phase);
                    visits += 1;
                }
            }
        }
        handler.end_model(model);
        visits
    }
}

/// A [`ContentHandler`] that records visited element names (testing and
/// diagnostics).
#[derive(Debug, Default)]
pub struct RecordingHandler {
    /// `(name, phase)` pairs in visit order.
    pub visits: Vec<(String, VisitPhase)>,
    /// Diagram names entered, in order.
    pub diagrams: Vec<String>,
}

impl ContentHandler for RecordingHandler {
    fn begin_diagram(&mut self, model: &Model, diagram: DiagramId) {
        self.diagrams.push(model.diagram(diagram).name.clone());
    }

    fn visit_element(&mut self, model: &Model, element: ElementId, phase: VisitPhase) {
        self.visits
            .push((model.element(element).name.clone(), phase));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;

    /// The Figure-7 sample model shape: main = init → A1 → dec → {SA | A2}
    /// → merge → A4 → final; SA = {SA1 → SA2}.
    fn sample_like_model() -> Model {
        let mut b = ModelBuilder::new("sample");
        let main = b.main_diagram();
        let sub = b.diagram("SA");
        let i = b.initial(main, "start");
        let a1 = b.action(main, "A1", "FA1()");
        let dec = b.decision(main, "dec");
        let sa = b.call_activity(main, "SA", sub);
        let a2 = b.action(main, "A2", "FA2()");
        let mrg = b.merge(main, "merge");
        let a4 = b.action(main, "A4", "FA4()");
        let f = b.final_node(main, "end");
        b.flow(main, i, a1);
        b.flow(main, a1, dec);
        b.guarded_flow(main, dec, sa, "GV == 1");
        b.guarded_flow(main, dec, a2, "else");
        b.flow(main, sa, mrg);
        b.flow(main, a2, mrg);
        b.flow(main, mrg, a4);
        b.flow(main, a4, f);
        let sa1 = b.action(sub, "SA1", "FSA1()");
        let sa2 = b.action(sub, "SA2", "FSA2(pid)");
        b.flow(sub, sa1, sa2);
        b.build()
    }

    #[test]
    fn explicit_stack_visits_nested_elements() {
        let m = sample_like_model();
        let mut nav = ExplicitStackNavigator::new(m.main_diagram());
        let mut handler = RecordingHandler::default();
        let mut t = Traverser::new();
        let visits = t.traverse(&m, &mut nav, &mut handler);
        // 8 main elements + 2 sub elements, two phases each.
        assert_eq!(visits, 20);
        // SA's children are visited between SA's Enter and Leave.
        let names: Vec<_> = handler
            .visits
            .iter()
            .map(|(n, p)| format!("{n}:{p:?}"))
            .collect();
        let sa_enter = names.iter().position(|s| s == "SA:Enter").unwrap();
        let sa_leave = names.iter().position(|s| s == "SA:Leave").unwrap();
        let sa1 = names.iter().position(|s| s == "SA1:Enter").unwrap();
        assert!(sa_enter < sa1 && sa1 < sa_leave);
        assert_eq!(handler.diagrams, vec!["main", "SA"]);
    }

    #[test]
    fn navigators_agree() {
        let m = sample_like_model();
        let run = |nav: &mut dyn Navigator| {
            let mut handler = RecordingHandler::default();
            Traverser::new().traverse(&m, nav, &mut handler);
            handler.visits
        };
        let a = run(&mut ExplicitStackNavigator::new(m.main_diagram()));
        let b = run(&mut RecursiveWalk::new(&m, m.main_diagram()));
        assert_eq!(a, b);
    }

    #[test]
    fn figure6_protocol_sequence() {
        // For every visited element the message order must be:
        // navigationCommand → getCurrentElement(ce) → visitElement(ce).
        let m = sample_like_model();
        let mut nav = ExplicitStackNavigator::new(m.main_diagram());
        let mut handler = RecordingHandler::default();
        let mut t = Traverser::recording();
        t.traverse(&m, &mut nav, &mut handler);

        let msgs = &t.protocol;
        assert!(!msgs.is_empty());
        let mut i = 0;
        let mut element_rounds = 0;
        while i < msgs.len() {
            assert_eq!(msgs[i], TraceMessage::NavigationCommand, "at {i}");
            if i + 1 >= msgs.len() {
                break; // final Done round has no current element
            }
            match &msgs[i + 1] {
                TraceMessage::GetCurrentElement(name)
                    if !name.starts_with("diagram:") && !name.starts_with("/diagram:") =>
                {
                    assert_eq!(
                        msgs[i + 2],
                        TraceMessage::VisitElement(name.clone()),
                        "visit must follow getCurrentElement for `{name}`"
                    );
                    element_rounds += 1;
                    i += 3;
                }
                TraceMessage::GetCurrentElement(_) => i += 2,
                other => panic!("unexpected message {other:?}"),
            }
        }
        assert_eq!(element_rounds, 20);
    }

    #[test]
    fn empty_model_traversal() {
        let m = Model::new("empty");
        let mut nav = ExplicitStackNavigator::new(m.main_diagram());
        let mut handler = RecordingHandler::default();
        let visits = Traverser::new().traverse(&m, &mut nav, &mut handler);
        assert_eq!(visits, 0);
        assert_eq!(handler.diagrams, vec!["main"]);
    }

    #[test]
    fn deep_nesting() {
        // activity+ chains 20 levels deep must not blow the stack and must
        // nest correctly.
        let mut b = ModelBuilder::new("deep");
        let mut current = b.main_diagram();
        let mut composites = Vec::new();
        for i in 0..20 {
            let sub = b.diagram(&format!("L{i}"));
            composites.push(b.call_activity(current, &format!("C{i}"), sub));
            current = sub;
        }
        b.action(current, "leaf", "1");
        let m = b.build();
        let mut nav = ExplicitStackNavigator::new(m.main_diagram());
        let mut handler = RecordingHandler::default();
        let visits = Traverser::new().traverse(&m, &mut nav, &mut handler);
        assert_eq!(visits, 2 * 21); // 20 composites + leaf
                                    // First Leave seen must be the innermost (leaf).
        let first_leave = handler
            .visits
            .iter()
            .find(|(_, p)| *p == VisitPhase::Leave)
            .unwrap();
        assert_eq!(first_leave.0, "leaf");
    }
}
