//! A fluent model-construction API — the programmatic stand-in for Teuta's
//! graphical drawing space (see DESIGN.md substitution table).

use crate::model::{
    DiagramId, ElementId, FunctionDecl, Model, NodeKind, VarScope, VarType, Variable,
};
use crate::profile::{StereotypeApplication, TagValue};

/// Builder over a [`Model`], with one method per drawing-palette tool.
pub struct ModelBuilder {
    model: Model,
    next_auto_id: i64,
}

impl ModelBuilder {
    /// Start a model with the performance profile applied.
    pub fn new(name: &str) -> Self {
        Self {
            model: Model::new(name),
            next_auto_id: 1,
        }
    }

    /// The main diagram id.
    pub fn main_diagram(&self) -> DiagramId {
        self.model.main_diagram()
    }

    /// Create an additional diagram.
    pub fn diagram(&mut self, name: &str) -> DiagramId {
        self.model.add_diagram(name)
    }

    fn auto_id(&mut self) -> i64 {
        let id = self.next_auto_id;
        self.next_auto_id += 1;
        id
    }

    /// Add an initial node.
    pub fn initial(&mut self, diagram: DiagramId, name: &str) -> ElementId {
        self.model
            .add_element(diagram, name, NodeKind::Initial, None)
    }

    /// Add an activity-final node.
    pub fn final_node(&mut self, diagram: DiagramId, name: &str) -> ElementId {
        self.model
            .add_element(diagram, name, NodeKind::ActivityFinal, None)
    }

    /// Add an `<<action+>>` with a cost expression (the common case of
    /// Figures 3(c) and 7).
    pub fn action(&mut self, diagram: DiagramId, name: &str, cost: &str) -> ElementId {
        let id = self.auto_id();
        let st = StereotypeApplication::new("action+")
            .with("id", TagValue::Int(id))
            .with("cost", TagValue::Expr(cost.into()));
        self.model
            .add_element(diagram, name, NodeKind::Action, Some(st))
    }

    /// Add an `<<action+>>` with an explicit `time` tag instead of a cost
    /// function (Figure 1(b) style).
    pub fn timed_action(&mut self, diagram: DiagramId, name: &str, time: f64) -> ElementId {
        let id = self.auto_id();
        let st = StereotypeApplication::new("action+")
            .with("id", TagValue::Int(id))
            .with("time", TagValue::Num(time));
        self.model
            .add_element(diagram, name, NodeKind::Action, Some(st))
    }

    /// Attach a code fragment to an element (Figure 7(b)).
    pub fn attach_code(&mut self, element: ElementId, code: &str) {
        let el = self.model.element_mut(element);
        match &mut el.stereotype {
            Some(st) => st.set("code", TagValue::Code(code.into())),
            None => {
                el.stereotype = Some(
                    StereotypeApplication::new("action+").with("code", TagValue::Code(code.into())),
                );
            }
        }
    }

    /// Set/replace any tag on an element's stereotype.
    pub fn set_tag(&mut self, element: ElementId, tag: &str, value: TagValue) {
        let el = self.model.element_mut(element);
        if let Some(st) = &mut el.stereotype {
            st.set(tag, value);
        }
    }

    /// Add an `<<activity+>>` composite whose body is `sub`.
    pub fn call_activity(&mut self, diagram: DiagramId, name: &str, sub: DiagramId) -> ElementId {
        let id = self.auto_id();
        let st = StereotypeApplication::new("activity+")
            .with("id", TagValue::Int(id))
            .with(
                "diagram",
                TagValue::Str(self.model.diagram(sub).name.clone()),
            );
        self.model
            .add_element(diagram, name, NodeKind::CallActivity(sub), Some(st))
    }

    /// Add a `<<loop+>>` composite: body `sub` repeated `iterations` times.
    pub fn loop_activity(
        &mut self,
        diagram: DiagramId,
        name: &str,
        sub: DiagramId,
        iterations: &str,
    ) -> ElementId {
        let id = self.auto_id();
        let st = StereotypeApplication::new("loop+")
            .with("id", TagValue::Int(id))
            .with("iterations", TagValue::Expr(iterations.into()));
        self.model
            .add_element(diagram, name, NodeKind::CallActivity(sub), Some(st))
    }

    /// Add a `<<parallel+>>` composite (OpenMP parallel region) running
    /// `sub` on `threads` threads.
    pub fn parallel_activity(
        &mut self,
        diagram: DiagramId,
        name: &str,
        sub: DiagramId,
        threads: &str,
    ) -> ElementId {
        let id = self.auto_id();
        let st = StereotypeApplication::new("parallel+")
            .with("id", TagValue::Int(id))
            .with("threads", TagValue::Expr(threads.into()));
        self.model
            .add_element(diagram, name, NodeKind::CallActivity(sub), Some(st))
    }

    /// Add a `<<critical+>>` composite: body `sub` executed under mutual
    /// exclusion on the named lock.
    pub fn critical_activity(
        &mut self,
        diagram: DiagramId,
        name: &str,
        sub: DiagramId,
        lock: &str,
    ) -> ElementId {
        let id = self.auto_id();
        let st = StereotypeApplication::new("critical+")
            .with("id", TagValue::Int(id))
            .with("lock", TagValue::Str(lock.into()));
        self.model
            .add_element(diagram, name, NodeKind::CallActivity(sub), Some(st))
    }

    /// Add a decision node.
    pub fn decision(&mut self, diagram: DiagramId, name: &str) -> ElementId {
        self.model
            .add_element(diagram, name, NodeKind::Decision, None)
    }

    /// Add a merge node.
    pub fn merge(&mut self, diagram: DiagramId, name: &str) -> ElementId {
        self.model.add_element(diagram, name, NodeKind::Merge, None)
    }

    /// Add a fork bar.
    pub fn fork(&mut self, diagram: DiagramId, name: &str) -> ElementId {
        self.model.add_element(diagram, name, NodeKind::Fork, None)
    }

    /// Add a join bar.
    pub fn join(&mut self, diagram: DiagramId, name: &str) -> ElementId {
        self.model.add_element(diagram, name, NodeKind::Join, None)
    }

    /// Add an MPI communication action (`send`, `recv`, `broadcast`, …)
    /// with tags.
    pub fn mpi(
        &mut self,
        diagram: DiagramId,
        name: &str,
        stereotype: &str,
        tags: &[(&str, TagValue)],
    ) -> ElementId {
        let id = self.auto_id();
        let mut st = StereotypeApplication::new(stereotype).with("id", TagValue::Int(id));
        for (k, v) in tags {
            st.set(k, v.clone());
        }
        self.model
            .add_element(diagram, name, NodeKind::Action, Some(st))
    }

    /// Add an unguarded control flow.
    pub fn flow(&mut self, diagram: DiagramId, from: ElementId, to: ElementId) {
        self.model.add_edge(diagram, from, to, None);
    }

    /// Add a guarded control flow (out of a decision node).
    pub fn guarded_flow(
        &mut self,
        diagram: DiagramId,
        from: ElementId,
        to: ElementId,
        guard: &str,
    ) {
        self.model.add_edge(diagram, from, to, Some(guard.into()));
    }

    /// Declare a global variable.
    pub fn global(&mut self, name: &str, var_type: VarType, init: Option<&str>) {
        self.model.add_variable(Variable {
            name: name.into(),
            var_type,
            scope: VarScope::Global,
            init: init.map(|s| s.to_string()),
        });
    }

    /// Declare a local variable.
    pub fn local(&mut self, name: &str, var_type: VarType, init: Option<&str>) {
        self.model.add_variable(Variable {
            name: name.into(),
            var_type,
            scope: VarScope::Local,
            init: init.map(|s| s.to_string()),
        });
    }

    /// Define a cost function.
    pub fn function(&mut self, name: &str, params: &[&str], body: &str) {
        self.model.add_function(FunctionDecl {
            name: name.into(),
            params: params.iter().map(|s| s.to_string()).collect(),
            body: body.into(),
        });
    }

    /// Finish and return the model.
    pub fn build(self) -> Model {
        self.model
    }

    /// Peek at the model under construction.
    pub fn model(&self) -> &Model {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_chain() {
        let mut b = ModelBuilder::new("chain");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let a = b.action(main, "A", "1.0");
        let f = b.final_node(main, "end");
        b.flow(main, i, a);
        b.flow(main, a, f);
        let m = b.build();
        assert_eq!(m.element_count(), 3);
        assert_eq!(m.diagram(main).edges.len(), 2);
    }

    #[test]
    fn auto_ids_are_sequential() {
        let mut b = ModelBuilder::new("ids");
        let main = b.main_diagram();
        let a1 = b.action(main, "A1", "1");
        let a2 = b.action(main, "A2", "1");
        let m = b.build();
        assert_eq!(m.element(a1).tag("id"), Some(&TagValue::Int(1)));
        assert_eq!(m.element(a2).tag("id"), Some(&TagValue::Int(2)));
    }

    #[test]
    fn attach_code_adds_tag() {
        let mut b = ModelBuilder::new("code");
        let main = b.main_diagram();
        let a1 = b.action(main, "A1", "FA1()");
        b.attach_code(a1, "GV = 1; P = 4;");
        let m = b.build();
        assert_eq!(m.element(a1).code_fragment(), Some("GV = 1; P = 4;"));
        assert_eq!(m.element(a1).cost_expr(), Some("FA1()"));
    }

    #[test]
    fn composite_records_diagram_name_tag() {
        let mut b = ModelBuilder::new("comp");
        let main = b.main_diagram();
        let sub = b.diagram("SA");
        let sa = b.call_activity(main, "SA", sub);
        let m = b.build();
        assert_eq!(
            m.element(sa).tag("diagram"),
            Some(&TagValue::Str("SA".into()))
        );
    }

    #[test]
    fn timed_action_has_time_tag() {
        let mut b = ModelBuilder::new("t");
        let main = b.main_diagram();
        let a = b.timed_action(main, "SampleAction", 10.0);
        let m = b.build();
        assert_eq!(m.element(a).tag("time"), Some(&TagValue::Num(10.0)));
        assert!(m.element(a).cost_expr().is_none());
    }

    #[test]
    fn mpi_builder() {
        let mut b = ModelBuilder::new("mpi");
        let main = b.main_diagram();
        let s = b.mpi(
            main,
            "send0",
            "send",
            &[
                ("dest", TagValue::Expr("pid + 1".into())),
                ("size", TagValue::Expr("8 * N".into())),
            ],
        );
        let m = b.build();
        assert_eq!(m.element(s).stereotype_name(), Some("send"));
        assert_eq!(m.element(s).tag("dest").unwrap().as_expr(), Some("pid + 1"));
    }
}
