//! # prophet-uml
//!
//! The UML activity-diagram metamodel and extension machinery of the
//! Performance Prophet reproduction (Pllana et al., ICPP-W 2008), i.e. the
//! model layer of **Teuta**.
//!
//! The paper models a scientific program as one or more UML *activity
//! diagrams* whose nodes are annotated through the UML extension
//! mechanisms — stereotypes, tagged values, and constraints (Section 2.1).
//! The performance profile defines, among others:
//!
//! * `<<action+>>` — a single-entry single-exit code region with tags
//!   `id`, `type`, `time` (Figure 1) plus `cost` (the associated cost
//!   function expression) and `code` (an associated code fragment,
//!   Figure 7(b)),
//! * `<<activity+>>` — a composite element whose content is a nested
//!   activity diagram (the `SA` element of Figure 7(a)),
//! * message-passing and shared-memory building blocks (`<<send>>`,
//!   `<<recv>>`, `<<barrier>>`, `<<parallel+>>`, …) from the authors'
//!   earlier UML extension \[17, 18\].
//!
//! Modules:
//!
//! * [`profile`] — stereotype/tag definitions and the performance profile,
//! * [`model`] — the arena-based model tree ([`Model`], [`Element`],
//!   [`Diagram`]), mirrored on the paper's statement that "the UML model,
//!   with its diagrams and modeling elements, forms a tree data
//!   structure",
//! * [`builder`] — a fluent API that plays the role of Teuta's drawing
//!   space,
//! * [`traverse`] — the Figure-6 `Traverser` / `Navigator` /
//!   `ContentHandler` trio,
//! * [`xmi`] — XML (XMI-flavoured) serialization of models, the
//!   `Models (XML)` artifact of Figure 2.
//!
//! ## Quickstart
//!
//! ```
//! use prophet_uml::builder::ModelBuilder;
//!
//! // The kernel-6 model of Figure 3(c): one <<action+>> with a cost fn.
//! let mut b = ModelBuilder::new("kernel6-model");
//! b.function("FK6", &["n"], "1.6e-9 * n * n");
//! let main = b.main_diagram();
//! let init = b.initial(main, "start");
//! let k6 = b.action(main, "Kernel6", "FK6(N)");
//! let fin = b.final_node(main, "end");
//! b.flow(main, init, k6);
//! b.flow(main, k6, fin);
//! let model = b.build();
//! assert_eq!(model.element_count(), 3);
//! ```

pub mod builder;
pub mod model;
pub mod profile;
pub mod traverse;
pub mod xmi;

pub use builder::ModelBuilder;
pub use model::{
    Diagram, DiagramId, Edge, Element, ElementId, FunctionDecl, Model, NodeKind, VarScope, VarType,
    Variable,
};
pub use profile::{
    performance_profile, Profile, Stereotype, StereotypeApplication, TagDef, TagType, TagValue,
};
pub use traverse::{
    ContentHandler, ExplicitStackNavigator, Navigator, RecordingHandler, RecursiveWalk,
    TraceMessage, Traverser, VisitPhase,
};
